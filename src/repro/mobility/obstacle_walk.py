"""Lazy random walk on a domain with mobility barriers.

The kernel is the paper's lazy walk restricted to the free region of an
:class:`~repro.grid.obstacles.ObstacleGrid`: a proposal that would move the
agent onto a blocked node (or off the grid) is rejected and the agent stays.
As with the boundary behaviour of the plain grid, this keeps the uniform
distribution over *free* nodes stationary.
"""

from __future__ import annotations

import numpy as np

from repro.grid.obstacles import ObstacleGrid
from repro.mobility.base import MobilityModel
from repro.util.rng import RandomState

_PROPOSALS = np.array(
    [[0, 0], [1, 0], [-1, 0], [0, 1], [0, -1]],
    dtype=np.int64,
)


class ObstacleWalkMobility(MobilityModel):
    """Independent lazy random walks confined to the free region of a domain."""

    def __init__(self, domain: ObstacleGrid) -> None:
        super().__init__(domain.grid)
        self._domain = domain

    @property
    def domain(self) -> ObstacleGrid:
        """The obstacle domain the agents move in."""
        return self._domain

    def initial_positions(self, n_agents: int, rng: RandomState) -> np.ndarray:
        """Uniform random placement over the *free* nodes."""
        return self._domain.random_free_positions(n_agents, rng)

    def step(self, positions: np.ndarray, rng: RandomState) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        k = positions.shape[0]
        choice = rng.integers(0, 5, size=k)
        proposed = positions + _PROPOSALS[choice]
        side = self._grid.side
        inside = (
            (proposed[:, 0] >= 0)
            & (proposed[:, 0] < side)
            & (proposed[:, 1] >= 0)
            & (proposed[:, 1] < side)
        )
        allowed = inside.copy()
        if np.any(inside):
            clipped = proposed[inside]
            allowed_inside = np.asarray(self._domain.is_free(clipped))
            allowed[inside] = allowed_inside
        return np.where(allowed[:, None], proposed, positions)
