"""Lazy random walk on a domain with mobility barriers.

The kernel is the paper's lazy walk restricted to the free region of an
:class:`~repro.grid.obstacles.ObstacleGrid`: a proposal that would move the
agent onto a blocked node (or off the grid) is rejected and the agent stays.
As with the boundary behaviour of the plain grid, this keeps the uniform
distribution over *free* nodes stationary.

The per-step draw is the same fixed-size proposal array as the open-grid
lazy walk, so batched stepping pre-draws per-trial blocks and applies the
masked rejection (:func:`repro.mobility.kernels.apply_masked_choices`) to
the whole batch at once.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.grid.lattice import Grid2D
from repro.grid.obstacles import ObstacleGrid
from repro.mobility.base import MobilityModel
from repro.mobility.kernels import (
    BatchStepper,
    BlockDrawStepper,
    MobilityState,
    _check_batch_positions,
    apply_masked_choices,
)
from repro.util.rng import RandomState


class ObstacleWalkMobility(MobilityModel):
    """Independent lazy random walks confined to the free region of a domain."""

    def __init__(self, domain: ObstacleGrid) -> None:
        super().__init__(domain.grid)
        self._domain = domain
        self._free_mask = domain.free_mask

    @classmethod
    def for_grid(cls, grid: Grid2D, domain: ObstacleGrid) -> "ObstacleWalkMobility":
        """Factory used by :func:`repro.mobility.make_mobility`.

        Validates that the domain lives on the grid the simulation runs on.
        """
        if domain.grid != grid:
            raise ValueError(
                f"obstacle domain is defined on {domain.grid!r}, but the "
                f"simulation grid is {grid!r}"
            )
        return cls(domain)

    @property
    def domain(self) -> ObstacleGrid:
        """The obstacle domain the agents move in."""
        return self._domain

    def initial_positions(self, n_agents: int, rng: RandomState) -> np.ndarray:
        """Uniform random placement over the *free* nodes."""
        return self._domain.random_free_positions(n_agents, rng)

    def step(
        self,
        positions: np.ndarray,
        rng: RandomState,
        state: Optional[MobilityState] = None,
    ) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        choice = rng.integers(0, 5, size=positions.shape[0])
        return apply_masked_choices(self._grid.side, self._free_mask, positions, choice)

    def step_batch(
        self,
        positions: np.ndarray,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> np.ndarray:
        positions = _check_batch_positions(positions, rngs)
        self._check_states(positions.shape[0], states)
        n_trials, k = positions.shape[:2]
        choice = np.empty((n_trials, k), dtype=np.int64)
        for trial, rng in enumerate(rngs):
            choice[trial] = rng.integers(0, 5, size=k)
        return apply_masked_choices(self._grid.side, self._free_mask, positions, choice)

    def batch_stepper(
        self,
        n_agents: int,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> BatchStepper:
        self._check_states(len(rngs), states)
        side = self._grid.side
        free_mask = self._free_mask
        return BlockDrawStepper(
            rngs,
            draw=lambda rng, block: rng.integers(0, 5, size=(block, n_agents)),
            apply=lambda positions, choice: apply_masked_choices(
                side, free_mask, positions, choice
            ),
            kernel=("masked", side, free_mask),
        )
