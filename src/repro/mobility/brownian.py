"""Discretised Brownian mobility (the substrate of Peres et al., SODA 2011).

Peres et al. study agents following independent Brownian motions in ``R^d``.
On the grid we approximate one Brownian step of standard deviation ``sigma``
by a rounded Gaussian displacement, reflected at the boundary so agents stay
inside the domain (reflection preserves the uniform stationary distribution).
Only the qualitative behaviour (diffusive motion with a tunable speed) is
needed for the above-percolation comparison experiment (E14).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.base import MobilityModel
from repro.mobility.kernels import (
    BatchStepper,
    BlockDrawStepper,
    MobilityState,
    NoDrawStepper,
    _check_batch_positions,
)
from repro.util.rng import RandomState
from repro.util.validation import check_non_negative


class BrownianMobility(MobilityModel):
    """Rounded-Gaussian displacement of standard deviation ``sigma`` per step.

    The per-step draw is one fixed-size Gaussian array per trial, so batched
    stepping pre-draws per-trial blocks and applies the rounding/reflection
    to the whole batch at once.
    """

    def __init__(self, grid: Grid2D, sigma: float = 1.0) -> None:
        super().__init__(grid)
        self._sigma = check_non_negative(sigma, "sigma")

    @property
    def sigma(self) -> float:
        """Per-step displacement standard deviation."""
        return self._sigma

    def _apply(self, positions: np.ndarray, displacement: np.ndarray) -> np.ndarray:
        proposed = positions + np.rint(displacement).astype(np.int64)
        return _reflect(proposed, self._grid.side)

    def step(
        self,
        positions: np.ndarray,
        rng: RandomState,
        state: Optional[MobilityState] = None,
    ) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if self._sigma == 0:
            return positions.copy()
        return self._apply(positions, rng.normal(0.0, self._sigma, size=positions.shape))

    def step_batch(
        self,
        positions: np.ndarray,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> np.ndarray:
        positions = _check_batch_positions(positions, rngs)
        self._check_states(positions.shape[0], states)
        if self._sigma == 0:
            return positions.copy()
        displacement = np.empty(positions.shape, dtype=np.float64)
        for trial, rng in enumerate(rngs):
            displacement[trial] = rng.normal(0.0, self._sigma, size=positions.shape[1:])
        return self._apply(positions, displacement)

    def batch_stepper(
        self,
        n_agents: int,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> BatchStepper:
        self._check_states(len(rngs), states)
        if self._sigma == 0:
            return NoDrawStepper()
        sigma = self._sigma
        return BlockDrawStepper(
            rngs,
            draw=lambda rng, block: rng.normal(0.0, sigma, size=(block, n_agents, 2)),
            apply=self._apply,
            kernel=("brownian", self._grid.side),
        )


def _reflect(positions: np.ndarray, side: int) -> np.ndarray:
    """Reflect coordinates into ``[0, side - 1]`` (billiard boundary)."""
    if side == 1:
        return np.zeros_like(positions)
    period = 2 * (side - 1)
    coords = np.mod(positions, period)
    coords = np.where(coords >= side, period - coords, coords)
    return coords.astype(np.int64)
