"""Discretised Brownian mobility (the substrate of Peres et al., SODA 2011).

Peres et al. study agents following independent Brownian motions in ``R^d``.
On the grid we approximate one Brownian step of standard deviation ``sigma``
by a rounded Gaussian displacement, reflected at the boundary so agents stay
inside the domain (reflection preserves the uniform stationary distribution).
Only the qualitative behaviour (diffusive motion with a tunable speed) is
needed for the above-percolation comparison experiment (E14).
"""

from __future__ import annotations

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.base import MobilityModel
from repro.util.rng import RandomState
from repro.util.validation import check_non_negative


class BrownianMobility(MobilityModel):
    """Rounded-Gaussian displacement of standard deviation ``sigma`` per step."""

    def __init__(self, grid: Grid2D, sigma: float = 1.0) -> None:
        super().__init__(grid)
        self._sigma = check_non_negative(sigma, "sigma")

    @property
    def sigma(self) -> float:
        """Per-step displacement standard deviation."""
        return self._sigma

    def step(self, positions: np.ndarray, rng: RandomState) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        if self._sigma == 0:
            return positions.copy()
        displacement = np.rint(rng.normal(0.0, self._sigma, size=positions.shape)).astype(np.int64)
        proposed = positions + displacement
        return _reflect(proposed, self._grid.side)


def _reflect(positions: np.ndarray, side: int) -> np.ndarray:
    """Reflect coordinates into ``[0, side - 1]`` (billiard boundary)."""
    if side == 1:
        return np.zeros_like(positions)
    period = 2 * (side - 1)
    coords = np.mod(positions, period)
    coords = np.where(coords >= side, period - coords, coords)
    return coords.astype(np.int64)
