"""Abstract interface of a mobility model."""

from __future__ import annotations

import abc

import numpy as np

from repro.grid.lattice import Grid2D
from repro.util.rng import RandomState


class MobilityModel(abc.ABC):
    """A rule for placing agents initially and moving them at each time step.

    Subclasses must be *stateless with respect to individual simulations*
    except for configuration: the simulation core passes the positions array
    explicitly so that one model instance can be shared across replications.
    Models that need per-agent auxiliary state (e.g. waypoints) may keep it
    keyed on the positions array identity via :meth:`reset`.
    """

    def __init__(self, grid: Grid2D) -> None:
        self._grid = grid

    @property
    def grid(self) -> Grid2D:
        """The lattice on which agents move."""
        return self._grid

    # ------------------------------------------------------------------ #
    def initial_positions(self, n_agents: int, rng: RandomState) -> np.ndarray:
        """Initial placement: uniform and independent over the grid nodes.

        All models in the paper and its baselines share this initial
        condition; override only if a different placement is required.
        """
        return self._grid.random_positions(n_agents, rng)

    def reset(self, n_agents: int, rng: RandomState) -> None:
        """Reset any per-simulation auxiliary state (default: nothing)."""

    @abc.abstractmethod
    def step(self, positions: np.ndarray, rng: RandomState) -> np.ndarray:
        """Return the positions after one movement step.

        Must not mutate ``positions`` in place.
        """

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(grid={self._grid!r})"
