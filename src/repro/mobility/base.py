"""Abstract interface of a mobility model (the batch-aware kernel contract)."""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.kernels import (
    BatchStepper,
    MobilityState,
    PerTrialStepper,
    _check_batch_positions,
)
from repro.util.rng import RandomState


class MobilityModel(abc.ABC):
    """A rule for placing agents initially and moving them at each time step.

    A model instance holds *configuration only* (the grid and the model's
    parameters); everything a single trial needs beyond its positions array
    lives in an explicit per-trial :class:`~repro.mobility.kernels.MobilityState`
    created by :meth:`init_state`, so one model instance can drive any number
    of concurrent trials.

    Every model is a *batch-aware kernel*: it exposes both the per-trial
    ``step(positions, rng, state)`` and the vectorised
    ``step_batch(positions, rngs, states)`` over an ``(R, k, 2)`` tensor of
    ``R`` independent trials, plus :meth:`batch_stepper` for loop-persistent
    batched stepping (see :mod:`repro.mobility.kernels`).  All batched entry
    points consume each trial's generator in exactly the order ``step``
    would, so a batched trial reproduces its serial counterpart bit for bit
    — the contract the ``backend="batched"`` replication engine relies on.
    """

    def __init__(self, grid: Grid2D) -> None:
        self._grid = grid
        self._shared_state: Optional[MobilityState] = None

    @property
    def grid(self) -> Grid2D:
        """The lattice on which agents move."""
        return self._grid

    # ------------------------------------------------------------------ #
    # Initial conditions and per-trial state
    # ------------------------------------------------------------------ #
    def initial_positions(self, n_agents: int, rng: RandomState) -> np.ndarray:
        """Initial placement: uniform and independent over the grid nodes.

        All models in the paper and its baselines share this initial
        condition; override only if a different placement is required.
        """
        return self._grid.random_positions(n_agents, rng)

    def init_state(self, n_agents: int, rng: RandomState) -> Optional[MobilityState]:
        """Draw a fresh per-trial auxiliary state (default: none).

        Stateful models (e.g. the waypoint model) override this; the caller
        owns the returned object and passes it back to every ``step`` /
        ``step_batch`` call of that trial.
        """
        return None

    def init_states(
        self, n_agents: int, rngs: Sequence[RandomState]
    ) -> list[Optional[MobilityState]]:
        """One :meth:`init_state` per replication, in trial order."""
        return [self.init_state(n_agents, rng) for rng in rngs]

    def reset(self, n_agents: int, rng: RandomState) -> None:
        """Re-draw the model-held fallback state.

        Compatibility shim for callers that treat the model as stateful and
        call ``step`` without an explicit state; new code should carry the
        state returned by :meth:`init_state` instead.
        """
        self._shared_state = self.init_state(n_agents, rng)

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def step(
        self,
        positions: np.ndarray,
        rng: RandomState,
        state: Optional[MobilityState] = None,
    ) -> np.ndarray:
        """Return the positions after one movement step.

        Must not mutate ``positions`` in place.  ``state`` is the trial's
        auxiliary state from :meth:`init_state`; stateful models fall back to
        the model-held state (re-drawing it if absent or sized for a
        different agent count) when ``state`` is None.
        """

    def step_batch(
        self,
        positions: np.ndarray,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> np.ndarray:
        """Advance ``R`` independent trials by one step each.

        ``positions`` has shape ``(R, k, 2)`` with one generator (and, for
        stateful models, one state) per trial.  The default implementation
        loops over trials calling :meth:`step`, which is always
        stream-equivalent; models whose draws are fixed-size override it
        with a vectorised version.
        """
        positions = _check_batch_positions(positions, rngs)
        states = self._check_states(positions.shape[0], states)
        out = np.empty_like(positions)
        for trial, rng in enumerate(rngs):
            out[trial] = self.step(positions[trial], rng, states[trial])
        return out

    def batch_stepper(
        self,
        n_agents: int,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> BatchStepper:
        """A loop-persistent batched stepper for a replication run.

        Unlike the one-shot :meth:`step_batch`, the returned object may
        amortise generator calls across steps (block pre-drawing) while
        preserving per-trial stream equivalence.  The default wraps
        :meth:`step` in a :class:`~repro.mobility.kernels.PerTrialStepper`.
        """
        return PerTrialStepper(self, rngs, self._check_states(len(rngs), states))

    # ------------------------------------------------------------------ #
    def _check_states(
        self,
        n_trials: int,
        states: Optional[Sequence[Optional[MobilityState]]],
    ) -> list[Optional[MobilityState]]:
        """Validate a per-trial state list, defaulting to all-None."""
        if states is None:
            if self._requires_state():
                raise ValueError(
                    f"{type(self).__name__} keeps per-trial auxiliary state; pass "
                    "the states from init_states() to batched stepping"
                )
            return [None] * n_trials
        states = list(states)
        if len(states) != n_trials:
            raise ValueError(f"expected {n_trials} states, got {len(states)}")
        return states

    def _requires_state(self) -> bool:
        """Whether batched stepping needs explicit per-trial states."""
        return type(self).init_state is not MobilityModel.init_state

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(grid={self._grid!r})"
