"""Mobility models (batch-aware kernels).

The paper's agents perform independent lazy random walks
(:class:`RandomWalkMobility`).  The other models implement the substrates of
the works the paper compares against:

* :class:`StaticMobility` — agents that never move (the uninformed agents of
  the Frog model);
* :class:`JumpMobility` — the dense "move anywhere within distance ρ" model
  of Clementi et al.;
* :class:`BrownianMobility` — a discretised version of the Brownian motions
  used by Peres et al.;
* :class:`RandomWaypointMobility` — a classical MANET mobility model,
  provided as an extension for exploring robustness of the results;
* :class:`ObstacleWalkMobility` — the lazy walk confined to the free region
  of an :class:`~repro.grid.obstacles.ObstacleGrid` (mobility barriers).

Every model is a *kernel* in the sense of :mod:`repro.mobility.kernels`: it
exposes both per-trial ``step`` and vectorised ``step_batch`` /
``batch_stepper`` entry points that consume each trial's random stream in
the identical order, so the serial and batched replication backends return
bit-for-bit identical results for every model.
"""

from repro.mobility.base import MobilityModel
from repro.mobility.kernels import BatchStepper, MobilityState, StepRule
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.static import StaticMobility
from repro.mobility.jump import JumpMobility
from repro.mobility.brownian import BrownianMobility
from repro.mobility.waypoint import RandomWaypointMobility, WaypointState
from repro.mobility.obstacle_walk import ObstacleWalkMobility

__all__ = [
    "MobilityModel",
    "MobilityState",
    "BatchStepper",
    "StepRule",
    "RandomWalkMobility",
    "StaticMobility",
    "JumpMobility",
    "BrownianMobility",
    "RandomWaypointMobility",
    "WaypointState",
    "ObstacleWalkMobility",
    "make_mobility",
]

#: Factories taking ``(grid, **kwargs)`` and returning a model.
_REGISTRY = {
    "random_walk": RandomWalkMobility,
    "static": StaticMobility,
    "jump": JumpMobility,
    "brownian": BrownianMobility,
    "waypoint": RandomWaypointMobility,
    "obstacle_walk": ObstacleWalkMobility.for_grid,
}


def make_mobility(name: str, grid, **kwargs) -> MobilityModel:
    """Instantiate a mobility model by name.

    Parameters
    ----------
    name:
        One of ``"random_walk"``, ``"static"``, ``"jump"``, ``"brownian"``,
        ``"waypoint"``, ``"obstacle_walk"``.
    grid:
        The :class:`repro.grid.Grid2D` the agents live on.  For
        ``"obstacle_walk"`` this must be the grid underlying the domain.
    kwargs:
        Forwarded to the model factory (e.g. ``jump_radius`` for
        :class:`JumpMobility`, ``domain`` for :class:`ObstacleWalkMobility`).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(f"unknown mobility model {name!r}; choose from {sorted(_REGISTRY)}") from exc
    return factory(grid, **kwargs)
