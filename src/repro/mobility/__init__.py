"""Mobility models.

The paper's agents perform independent lazy random walks
(:class:`RandomWalkMobility`).  The other models implement the substrates of
the works the paper compares against:

* :class:`StaticMobility` — agents that never move (the uninformed agents of
  the Frog model);
* :class:`JumpMobility` — the dense "move anywhere within distance ρ" model
  of Clementi et al.;
* :class:`BrownianMobility` — a discretised version of the Brownian motions
  used by Peres et al.;
* :class:`RandomWaypointMobility` — a classical MANET mobility model,
  provided as an extension for exploring robustness of the results.
"""

from repro.mobility.base import MobilityModel
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.static import StaticMobility
from repro.mobility.jump import JumpMobility
from repro.mobility.brownian import BrownianMobility
from repro.mobility.waypoint import RandomWaypointMobility

__all__ = [
    "MobilityModel",
    "RandomWalkMobility",
    "StaticMobility",
    "JumpMobility",
    "BrownianMobility",
    "RandomWaypointMobility",
    "make_mobility",
]

_REGISTRY = {
    "random_walk": RandomWalkMobility,
    "static": StaticMobility,
    "jump": JumpMobility,
    "brownian": BrownianMobility,
    "waypoint": RandomWaypointMobility,
}


def make_mobility(name: str, grid, **kwargs) -> MobilityModel:
    """Instantiate a mobility model by name.

    Parameters
    ----------
    name:
        One of ``"random_walk"``, ``"static"``, ``"jump"``, ``"brownian"``,
        ``"waypoint"``.
    grid:
        The :class:`repro.grid.Grid2D` the agents live on.
    kwargs:
        Forwarded to the model constructor (e.g. ``jump_radius`` for
        :class:`JumpMobility`).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError as exc:
        raise ValueError(f"unknown mobility model {name!r}; choose from {sorted(_REGISTRY)}") from exc
    return cls(grid, **kwargs)
