"""The paper's mobility model: independent lazy random walks."""

from __future__ import annotations

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.base import MobilityModel
from repro.walks.engine import lazy_step, simple_step, StepRule
from repro.util.rng import RandomState


class RandomWalkMobility(MobilityModel):
    """Independent random walks on the grid.

    Parameters
    ----------
    grid:
        The lattice.
    rule:
        ``"lazy"`` (default) reproduces the paper's transition kernel, which
        keeps the uniform distribution stationary; ``"simple"`` moves to a
        uniformly random neighbour at every step.
    """

    def __init__(self, grid: Grid2D, rule: StepRule = "lazy") -> None:
        super().__init__(grid)
        if rule not in ("lazy", "simple"):
            raise ValueError(f"rule must be 'lazy' or 'simple', got {rule!r}")
        self._rule = rule

    @property
    def rule(self) -> StepRule:
        """The step rule ('lazy' or 'simple')."""
        return self._rule

    def step(self, positions: np.ndarray, rng: RandomState) -> np.ndarray:
        if self._rule == "lazy":
            return lazy_step(self._grid, positions, rng)
        return simple_step(self._grid, positions, rng)
