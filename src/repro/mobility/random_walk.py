"""The paper's mobility model: independent lazy random walks."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.base import MobilityModel
from repro.mobility.kernels import (
    BatchStepper,
    BlockDrawStepper,
    MobilityState,
    PerTrialStepper,
    StepRule,
    _check_batch_positions,
    apply_lazy_choices,
    lazy_step,
    lazy_step_batch,
    simple_step,
)
from repro.util.rng import RandomState


class RandomWalkMobility(MobilityModel):
    """Independent random walks on the grid.

    Parameters
    ----------
    grid:
        The lattice.
    rule:
        ``"lazy"`` (default) reproduces the paper's transition kernel, which
        keeps the uniform distribution stationary; ``"simple"`` moves to a
        uniformly random neighbour at every step.
    """

    def __init__(self, grid: Grid2D, rule: StepRule = "lazy") -> None:
        super().__init__(grid)
        if rule not in ("lazy", "simple"):
            raise ValueError(f"rule must be 'lazy' or 'simple', got {rule!r}")
        self._rule = rule

    @property
    def rule(self) -> StepRule:
        """The step rule ('lazy' or 'simple')."""
        return self._rule

    def step(
        self,
        positions: np.ndarray,
        rng: RandomState,
        state: Optional[MobilityState] = None,
    ) -> np.ndarray:
        if self._rule == "lazy":
            return lazy_step(self._grid, positions, rng)
        return simple_step(self._grid, positions, rng)

    def step_batch(
        self,
        positions: np.ndarray,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> np.ndarray:
        if self._rule != "lazy":
            # The simple rule's rejection loop consumes a data-dependent
            # number of draws, so trials step one generator at a time.
            return super().step_batch(positions, rngs, states)
        positions = _check_batch_positions(positions, rngs)
        self._check_states(positions.shape[0], states)
        return lazy_step_batch(self._grid, positions, rngs)

    def batch_stepper(
        self,
        n_agents: int,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> BatchStepper:
        states = self._check_states(len(rngs), states)
        if self._rule != "lazy":
            return PerTrialStepper(self, rngs, states)
        grid = self._grid
        return BlockDrawStepper(
            rngs,
            draw=lambda rng, block: rng.integers(0, 5, size=(block, n_agents)),
            apply=lambda positions, choice: apply_lazy_choices(grid, positions, choice),
            kernel=("lazy", grid.side),
        )
