"""Jump mobility: the dense model of Clementi et al. (IPDPS'09 / ICALP'09).

In that model an agent may move, in one step, to *any* node within Manhattan
distance ``ρ`` of its current position, chosen uniformly at random.  The
paper contrasts its smooth random-walk dynamics with this model, whose
results require ``R + ρ = Ω(sqrt(log n))`` and ``k = Θ(n)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.base import MobilityModel
from repro.mobility.kernels import MobilityState
from repro.util.rng import RandomState
from repro.util.validation import check_positive_int


class JumpMobility(MobilityModel):
    """Move to a uniformly random node within Manhattan distance ``jump_radius``.

    The destination is drawn by rejection sampling from the bounding box of
    the L1 ball, which has acceptance probability about 1/2 and therefore
    costs O(1) expected draws per agent per step.  The rejection loop makes
    the per-step draw count data dependent, so batched stepping uses the
    per-trial fallback of :class:`~repro.mobility.base.MobilityModel`.
    """

    def __init__(self, grid: Grid2D, jump_radius: int = 1) -> None:
        super().__init__(grid)
        self._rho = check_positive_int(jump_radius, "jump_radius")

    @property
    def jump_radius(self) -> int:
        """The maximum jump distance ρ."""
        return self._rho

    def step(
        self,
        positions: np.ndarray,
        rng: RandomState,
        state: Optional[MobilityState] = None,
    ) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.int64)
        k = positions.shape[0]
        rho = self._rho
        result = positions.copy()
        pending = np.arange(k)
        # Rejection-sample an offset in the L1 ball of radius rho, then clip
        # destinations that fall outside the grid by re-drawing.
        while pending.size:
            dx = rng.integers(-rho, rho + 1, size=pending.size)
            dy = rng.integers(-rho, rho + 1, size=pending.size)
            inside_ball = (np.abs(dx) + np.abs(dy)) <= rho
            nx = positions[pending, 0] + dx
            ny = positions[pending, 1] + dy
            inside_grid = (
                (nx >= 0) & (nx < self._grid.side) & (ny >= 0) & (ny < self._grid.side)
            )
            ok = inside_ball & inside_grid
            accepted = pending[ok]
            result[accepted, 0] = nx[ok]
            result[accepted, 1] = ny[ok]
            pending = pending[~ok]
        return result
