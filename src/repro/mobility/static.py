"""Static (non-moving) agents, used for the uninformed agents of the Frog model."""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.util.rng import RandomState


class StaticMobility(MobilityModel):
    """Agents that never move."""

    def step(self, positions: np.ndarray, rng: RandomState) -> np.ndarray:
        return np.asarray(positions, dtype=np.int64).copy()
