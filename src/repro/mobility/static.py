"""Static (non-moving) agents, used for the uninformed agents of the Frog model."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.mobility.base import MobilityModel
from repro.mobility.kernels import (
    BatchStepper,
    MobilityState,
    NoDrawStepper,
    _check_batch_positions,
)
from repro.util.rng import RandomState


class StaticMobility(MobilityModel):
    """Agents that never move."""

    def step(
        self,
        positions: np.ndarray,
        rng: RandomState,
        state: Optional[MobilityState] = None,
    ) -> np.ndarray:
        return np.asarray(positions, dtype=np.int64).copy()

    def step_batch(
        self,
        positions: np.ndarray,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> np.ndarray:
        positions = _check_batch_positions(positions, rngs)
        self._check_states(positions.shape[0], states)
        return positions.copy()

    def batch_stepper(
        self,
        n_agents: int,
        rngs: Sequence[RandomState],
        states: Optional[Sequence[Optional[MobilityState]]] = None,
    ) -> BatchStepper:
        self._check_states(len(rngs), states)
        return NoDrawStepper()
