"""The 2-D square lattice ``G_n`` on which the agents perform random walks."""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

from repro.grid.geometry import manhattan_distance
from repro.util.rng import RandomState, default_rng
from repro.util.validation import check_positive_int


class Grid2D:
    """An ``side x side`` square grid with 4-neighbour (von Neumann) adjacency.

    Nodes are addressed either by integer coordinates ``(x, y)`` with
    ``0 <= x, y < side`` or by a flat node identifier
    ``node_id = x * side + y``.

    The grid is *not* a torus: boundary nodes have degree 2 or 3, exactly as
    in the paper, and the lazy random walk of
    :class:`repro.walks.walkers.WalkEngine` compensates for the missing
    neighbours by staying put, which keeps the uniform distribution
    stationary.
    """

    __slots__ = ("_side",)

    def __init__(self, side: int) -> None:
        self._side = check_positive_int(side, "side")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_nodes(cls, n_nodes: int) -> "Grid2D":
        """Build the largest square grid with at most ``n_nodes`` nodes.

        The paper speaks of an "n-node grid"; experiments usually specify
        ``n`` and we round down to the nearest perfect square.
        """
        n_nodes = check_positive_int(n_nodes, "n_nodes")
        side = int(math.isqrt(n_nodes))
        return cls(side)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def side(self) -> int:
        """Number of nodes per row/column."""
        return self._side

    @property
    def n_nodes(self) -> int:
        """Total number of nodes ``n = side * side``."""
        return self._side * self._side

    @property
    def diameter(self) -> int:
        """Manhattan diameter of the grid, ``2 * (side - 1)``."""
        return 2 * (self._side - 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Grid2D(side={self._side})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Grid2D) and other._side == self._side

    def __hash__(self) -> int:
        return hash(("Grid2D", self._side))

    # ------------------------------------------------------------------ #
    # Coordinates and node identifiers
    # ------------------------------------------------------------------ #
    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``(x, y)`` positions lie inside the grid."""
        pts = np.asarray(positions)
        if pts.ndim == 1:
            pts = pts.reshape(1, 2)
        inside = (
            (pts[:, 0] >= 0)
            & (pts[:, 0] < self._side)
            & (pts[:, 1] >= 0)
            & (pts[:, 1] < self._side)
        )
        return inside if inside.size > 1 else inside.reshape(())

    def node_id(self, positions: np.ndarray) -> np.ndarray:
        """Flat node identifier(s) for ``(x, y)`` position(s)."""
        pts = np.asarray(positions, dtype=np.int64)
        single = pts.ndim == 1
        if single:
            pts = pts.reshape(1, 2)
        if np.any((pts < 0) | (pts >= self._side)):
            raise ValueError("position outside the grid")
        ids = pts[:, 0] * self._side + pts[:, 1]
        return int(ids[0]) if single else ids

    def coords(self, node_ids: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`node_id`: ``(x, y)`` coordinates of node id(s)."""
        ids = np.asarray(node_ids, dtype=np.int64)
        single = ids.ndim == 0
        ids = np.atleast_1d(ids)
        if np.any((ids < 0) | (ids >= self.n_nodes)):
            raise ValueError("node id outside the grid")
        coords = np.stack([ids // self._side, ids % self._side], axis=1)
        return coords[0] if single else coords

    # ------------------------------------------------------------------ #
    # Neighbourhood structure
    # ------------------------------------------------------------------ #
    def neighbors(self, position: Tuple[int, int]) -> list[Tuple[int, int]]:
        """List of the grid neighbours of a single node (2, 3 or 4 of them)."""
        x, y = int(position[0]), int(position[1])
        if not (0 <= x < self._side and 0 <= y < self._side):
            raise ValueError(f"position {(x, y)} outside the grid")
        candidates = [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
        return [
            (cx, cy)
            for cx, cy in candidates
            if 0 <= cx < self._side and 0 <= cy < self._side
        ]

    def degree(self, position: Tuple[int, int]) -> int:
        """Number of grid neighbours of a node (``n_v`` in the paper)."""
        return len(self.neighbors(position))

    def iter_nodes(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all node coordinates in row-major order."""
        for x in range(self._side):
            for y in range(self._side):
                yield (x, y)

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def manhattan(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Manhattan distance between positions ``a`` and ``b``."""
        return manhattan_distance(a, b)

    # ------------------------------------------------------------------ #
    # Random placement
    # ------------------------------------------------------------------ #
    def random_positions(self, count: int, rng: RandomState | None = None) -> np.ndarray:
        """``count`` positions drawn uniformly and independently at random.

        This is the paper's initial condition: agents are placed uniformly
        and independently on grid nodes (several agents may share a node).
        """
        count = check_positive_int(count, "count")
        rng = default_rng(rng)
        return rng.integers(0, self._side, size=(count, 2), dtype=np.int64)

    def center(self) -> np.ndarray:
        """Coordinates of the (lower-left of the) central node."""
        mid = self._side // 2
        return np.array([mid, mid], dtype=np.int64)

    def clip(self, positions: np.ndarray) -> np.ndarray:
        """Clip positions element-wise into the grid (used by Brownian mobility)."""
        return np.clip(np.asarray(positions, dtype=np.int64), 0, self._side - 1)
