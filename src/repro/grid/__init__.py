"""Grid substrate: 2-D lattice geometry, distances and the proof tessellation.

The paper models the domain where agents wander as an ``n``-node
2-dimensional square grid ``G_n``.  This subpackage provides the lattice
itself (:class:`~repro.grid.lattice.Grid2D`), vectorised distance functions
(:mod:`repro.grid.geometry`) and the cell tessellation used in the proof of
Theorem 1 (:class:`~repro.grid.tessellation.Tessellation`).
"""

from repro.grid.lattice import Grid2D
from repro.grid.geometry import (
    manhattan_distance,
    chebyshev_distance,
    euclidean_distance,
    pairwise_manhattan,
)
from repro.grid.tessellation import Tessellation, paper_cell_side

__all__ = [
    "Grid2D",
    "manhattan_distance",
    "chebyshev_distance",
    "euclidean_distance",
    "pairwise_manhattan",
    "Tessellation",
    "paper_cell_side",
]
