"""Vectorised distance functions on the 2-D lattice.

Positions are represented throughout the library as integer numpy arrays of
shape ``(k, 2)`` holding ``(x, y)`` coordinates, or ``(2,)`` for a single
point.  The paper measures distances in the Manhattan (L1) metric; the
Chebyshev and Euclidean metrics are provided for the baseline models and for
cross-checks.
"""

from __future__ import annotations

import numpy as np


def _as_points(points: np.ndarray) -> np.ndarray:
    arr = np.asarray(points)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.shape[-1] != 2:
        raise ValueError(f"points must have shape (..., 2), got {arr.shape}")
    return arr


def _maybe_scalar(values: np.ndarray) -> np.ndarray:
    """Collapse a length-1 result to a 0-d array so ``int()``/``float()`` work."""
    return values.reshape(()) if values.size == 1 else values


def manhattan_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Manhattan (L1) distance between points ``a`` and ``b`` (broadcasting)."""
    a = _as_points(a)
    b = _as_points(b)
    return _maybe_scalar(np.abs(a[..., 0] - b[..., 0]) + np.abs(a[..., 1] - b[..., 1]))


def chebyshev_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Chebyshev (L-infinity) distance between points ``a`` and ``b``."""
    a = _as_points(a)
    b = _as_points(b)
    return _maybe_scalar(
        np.maximum(np.abs(a[..., 0] - b[..., 0]), np.abs(a[..., 1] - b[..., 1]))
    )


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean (L2) distance between points ``a`` and ``b``."""
    a = _as_points(a)
    b = _as_points(b)
    dx = a[..., 0].astype(np.float64) - b[..., 0]
    dy = a[..., 1].astype(np.float64) - b[..., 1]
    return _maybe_scalar(np.sqrt(dx * dx + dy * dy))


_METRICS = {
    "manhattan": manhattan_distance,
    "chebyshev": chebyshev_distance,
    "euclidean": euclidean_distance,
}


def distance(a: np.ndarray, b: np.ndarray, metric: str = "manhattan") -> np.ndarray:
    """Distance between ``a`` and ``b`` under the named metric."""
    try:
        func = _METRICS[metric]
    except KeyError as exc:
        raise ValueError(f"unknown metric {metric!r}; choose from {sorted(_METRICS)}") from exc
    return func(a, b)


def pairwise_manhattan(points: np.ndarray) -> np.ndarray:
    """Full ``(k, k)`` matrix of pairwise Manhattan distances.

    Quadratic in the number of points; used only by tests and as the oracle
    for the spatial-hash neighbour search.
    """
    pts = _as_points(points).astype(np.int64)
    dx = np.abs(pts[:, None, 0] - pts[None, :, 0])
    dy = np.abs(pts[:, None, 1] - pts[None, :, 1])
    return dx + dy


def displacement(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Signed displacement vector(s) ``b - a``."""
    return _as_points(b).astype(np.int64) - _as_points(a).astype(np.int64)
