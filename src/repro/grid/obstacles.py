"""Planar domains with obstacles (mobility and communication barriers).

Section 4 of the paper lists, as future work, extending the analysis "to
handle more complex planar domains that include both communication and
mobility barriers".  :class:`ObstacleGrid` implements that domain: a square
lattice in which a subset of nodes is *blocked*.  Blocked nodes cannot be
occupied or traversed by agents (mobility barrier) and, optionally, block
radio transmission between agents whose line of sight crosses them
(communication barrier, see :mod:`repro.connectivity.barriers`).

Factory helpers build the two canonical scenarios used by experiment E17:

* :meth:`ObstacleGrid.with_wall` — a vertical wall with a narrow gap, the
  classic "bottleneck" domain;
* :meth:`ObstacleGrid.with_random_obstacles` — a fixed density of uniformly
  random blocked nodes ("cluttered" domain).
"""

from __future__ import annotations

import numpy as np

from repro.grid.lattice import Grid2D
from repro.util.rng import RandomState, default_rng
from repro.util.validation import check_positive_int, check_probability


class ObstacleGrid:
    """A :class:`Grid2D` together with a boolean mask of blocked nodes.

    The mask has shape ``(side, side)`` and ``mask[x, y] = True`` means node
    ``(x, y)`` is blocked.  The free region is expected (but not required) to
    be connected; :meth:`free_region_is_connected` checks it.
    """

    def __init__(self, grid: Grid2D, blocked: np.ndarray) -> None:
        blocked = np.asarray(blocked, dtype=bool)
        if blocked.shape != (grid.side, grid.side):
            raise ValueError(
                f"blocked mask must have shape {(grid.side, grid.side)}, got {blocked.shape}"
            )
        if blocked.all():
            raise ValueError("the obstacle mask blocks every node of the grid")
        self._grid = grid
        self._blocked = blocked.copy()
        self._free = ~self._blocked
        self._free.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, side: int) -> "ObstacleGrid":
        """An obstacle grid with no obstacles (behaves like a plain grid)."""
        grid = Grid2D(side)
        return cls(grid, np.zeros((side, side), dtype=bool))

    @classmethod
    def with_wall(cls, side: int, gap_width: int = 1, column: int | None = None) -> "ObstacleGrid":
        """A vertical wall with a centred gap of ``gap_width`` nodes.

        The wall occupies the column ``column`` (default: the middle column)
        and blocks every node except the ``gap_width`` central ones, creating
        a bottleneck between the left and right halves of the domain.
        """
        side = check_positive_int(side, "side")
        gap_width = check_positive_int(gap_width, "gap_width")
        if gap_width > side:
            raise ValueError(f"gap_width {gap_width} exceeds the grid side {side}")
        grid = Grid2D(side)
        column = side // 2 if column is None else int(column)
        if not (0 <= column < side):
            raise ValueError(f"column must lie in [0, {side}), got {column}")
        blocked = np.zeros((side, side), dtype=bool)
        blocked[column, :] = True
        gap_start = (side - gap_width) // 2
        blocked[column, gap_start : gap_start + gap_width] = False
        return cls(grid, blocked)

    @classmethod
    def with_random_obstacles(
        cls, side: int, density: float, rng: RandomState | int | None = None
    ) -> "ObstacleGrid":
        """Block each node independently with probability ``density``.

        Nodes are re-drawn (up to a few attempts) if the sampled mask blocks
        everything; the free region may still be disconnected at high
        densities — callers should check :meth:`free_region_is_connected`.
        """
        side = check_positive_int(side, "side")
        density = check_probability(density, "density")
        rng = default_rng(rng)
        grid = Grid2D(side)
        for _ in range(10):
            blocked = rng.random((side, side)) < density
            if not blocked.all():
                return cls(grid, blocked)
        # Degenerate density ~1.0: keep one free node.
        blocked = np.ones((side, side), dtype=bool)
        blocked[0, 0] = False
        return cls(grid, blocked)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid2D:
        """The underlying plain lattice."""
        return self._grid

    @property
    def side(self) -> int:
        """Grid side length."""
        return self._grid.side

    @property
    def blocked_mask(self) -> np.ndarray:
        """Copy of the ``(side, side)`` blocked-node mask."""
        return self._blocked.copy()

    @property
    def free_mask(self) -> np.ndarray:
        """Read-only ``(side, side)`` mask of free nodes.

        Returned without copying (write-protected) so hot loops — the masked
        proposal rejection of the obstacle-walk kernel — can index it every
        step without allocating.
        """
        return self._free

    @property
    def n_blocked(self) -> int:
        """Number of blocked nodes."""
        return int(self._blocked.sum())

    @property
    def n_free(self) -> int:
        """Number of free (occupiable) nodes."""
        return self._grid.n_nodes - self.n_blocked

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ObstacleGrid(side={self.side}, blocked={self.n_blocked})"

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_blocked(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of which positions are blocked (positions must be in-grid)."""
        pts = np.asarray(positions, dtype=np.int64)
        single = pts.ndim == 1
        if single:
            pts = pts.reshape(1, 2)
        if np.any((pts < 0) | (pts >= self.side)):
            raise ValueError("position outside the grid")
        result = self._blocked[pts[:, 0], pts[:, 1]]
        return bool(result[0]) if single else result

    def is_free(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of which positions are free."""
        blocked = self.is_blocked(positions)
        if isinstance(blocked, (bool, np.bool_)):
            return not blocked
        return ~blocked

    def free_nodes(self) -> np.ndarray:
        """``(n_free, 2)`` array of the coordinates of all free nodes."""
        xs, ys = np.nonzero(~self._blocked)
        return np.stack([xs, ys], axis=1).astype(np.int64)

    def random_free_positions(self, count: int, rng: RandomState | int | None = None) -> np.ndarray:
        """``count`` positions drawn uniformly at random among the free nodes."""
        count = check_positive_int(count, "count")
        rng = default_rng(rng)
        free = self.free_nodes()
        idx = rng.integers(0, free.shape[0], size=count)
        return free[idx]

    def free_region_is_connected(self) -> bool:
        """Whether the free nodes form a single 4-connected region."""
        free = ~self._blocked
        total_free = int(free.sum())
        if total_free == 0:
            return False
        start = tuple(np.argwhere(free)[0])
        seen = np.zeros_like(free)
        stack = [start]
        seen[start] = True
        count = 0
        while stack:
            x, y = stack.pop()
            count += 1
            for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if 0 <= nx < self.side and 0 <= ny < self.side:
                    if free[nx, ny] and not seen[nx, ny]:
                        seen[nx, ny] = True
                        stack.append((nx, ny))
        return count == total_free

    # ------------------------------------------------------------------ #
    # Line of sight (communication barriers)
    # ------------------------------------------------------------------ #
    def line_of_sight(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Whether the straight segment from ``a`` to ``b`` avoids blocked nodes.

        Uses a conservative supercover (Bresenham-like) traversal: every grid
        node whose unit cell the segment passes through is checked.  The two
        endpoints themselves are not required to be free (they host agents,
        which are only placed on free nodes anyway).
        """
        a = np.asarray(a, dtype=np.int64).reshape(2)
        b = np.asarray(b, dtype=np.int64).reshape(2)
        x0, y0 = int(a[0]), int(a[1])
        x1, y1 = int(b[0]), int(b[1])
        dx, dy = abs(x1 - x0), abs(y1 - y0)
        x, y = x0, y0
        sx = 1 if x1 > x0 else -1
        sy = 1 if y1 > y0 else -1
        err = dx - dy
        while True:
            if (x, y) != (x0, y0) and (x, y) != (x1, y1):
                if self._blocked[x, y]:
                    return False
            if x == x1 and y == y1:
                return True
            e2 = 2 * err
            moved = False
            if e2 > -dy:
                err -= dy
                x += sx
                moved = True
            if e2 < dx:
                err += dx
                y += sy
                moved = True
            if not moved:  # pragma: no cover - defensive; cannot happen
                return True
