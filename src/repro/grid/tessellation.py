"""Cell tessellation of the grid used in the proof of Theorem 1.

The upper-bound argument tessellates ``G_n`` into square cells of side
``ℓ = sqrt(14 n log^3 n / (c3 k))`` and tracks, cell by cell, when the rumor
first reaches the cell ("the cell is *reached*", its first informed visitor
being the *explorer*).  The :class:`Tessellation` class provides the mapping
from agent positions to cells, cell adjacency, and per-cell reach-time
tracking used by :mod:`repro.core.metrics` and experiment E6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.grid.lattice import Grid2D
from repro.util.validation import check_positive_int


def paper_cell_side(n_nodes: int, n_agents: int, c3: float = 1.0) -> float:
    """Cell side ``ℓ = sqrt(14 n log^3 n / (c3 k))`` from the proof of Theorem 1.

    ``c3`` is the (unspecified) constant of Lemma 3; the default of 1.0 is a
    convenient normalisation for finite-size experiments.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    n_agents = check_positive_int(n_agents, "n_agents")
    if c3 <= 0:
        raise ValueError(f"c3 must be positive, got {c3}")
    log_n = max(math.log(n_nodes), 1.0)
    return math.sqrt(14.0 * n_nodes * log_n**3 / (c3 * n_agents))


@dataclass
class CellReachRecord:
    """Bookkeeping of when each tessellation cell was first reached."""

    reach_times: np.ndarray
    explorer: np.ndarray

    @property
    def all_reached(self) -> bool:
        """True when every cell has been visited by an informed agent."""
        return bool(np.all(self.reach_times >= 0))

    @property
    def n_reached(self) -> int:
        """Number of cells already reached."""
        return int(np.count_nonzero(self.reach_times >= 0))


class Tessellation:
    """Partition of a :class:`Grid2D` into square cells of a given side.

    Cells are indexed by ``cell_id = cx * cells_per_side + cy`` where
    ``cx = x // cell_side`` (and likewise for ``y``).  The rightmost cells
    may be narrower when ``side`` is not a multiple of ``cell_side``.
    """

    def __init__(self, grid: Grid2D, cell_side: int) -> None:
        self._grid = grid
        self._cell_side = check_positive_int(cell_side, "cell_side")
        self._cells_per_side = math.ceil(grid.side / self._cell_side)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_paper(cls, grid: Grid2D, n_agents: int, c3: float = 1.0) -> "Tessellation":
        """Tessellation with the cell side used in the proof of Theorem 1.

        The theoretical cell side is clipped to ``[1, grid.side]`` so that
        finite-size experiments always obtain a valid tessellation.
        """
        ell = paper_cell_side(grid.n_nodes, n_agents, c3=c3)
        cell_side = int(min(max(1, round(ell)), grid.side))
        return cls(grid, cell_side)

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid2D:
        """The underlying lattice."""
        return self._grid

    @property
    def cell_side(self) -> int:
        """Side length of each (interior) cell."""
        return self._cell_side

    @property
    def cells_per_side(self) -> int:
        """Number of cells per row/column of the tessellation."""
        return self._cells_per_side

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        return self._cells_per_side * self._cells_per_side

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Tessellation(side={self._grid.side}, cell_side={self._cell_side}, "
            f"n_cells={self.n_cells})"
        )

    # ------------------------------------------------------------------ #
    def cell_of(self, positions: np.ndarray) -> np.ndarray:
        """Cell identifier(s) of ``(x, y)`` position(s)."""
        pts = np.asarray(positions, dtype=np.int64)
        single = pts.ndim == 1
        if single:
            pts = pts.reshape(1, 2)
        if np.any((pts < 0) | (pts >= self._grid.side)):
            raise ValueError("position outside the grid")
        cx = pts[:, 0] // self._cell_side
        cy = pts[:, 1] // self._cell_side
        ids = cx * self._cells_per_side + cy
        return int(ids[0]) if single else ids

    def cell_coords(self, cell_ids: np.ndarray) -> np.ndarray:
        """``(cx, cy)`` coordinates of cell identifier(s)."""
        ids = np.asarray(cell_ids, dtype=np.int64)
        single = ids.ndim == 0
        ids = np.atleast_1d(ids)
        if np.any((ids < 0) | (ids >= self.n_cells)):
            raise ValueError("cell id outside the tessellation")
        coords = np.stack([ids // self._cells_per_side, ids % self._cells_per_side], axis=1)
        return coords[0] if single else coords

    def cell_center(self, cell_id: int) -> np.ndarray:
        """Grid coordinates of (approximately) the centre node of a cell."""
        cx, cy = self.cell_coords(cell_id)
        x = min(int(cx) * self._cell_side + self._cell_side // 2, self._grid.side - 1)
        y = min(int(cy) * self._cell_side + self._cell_side // 2, self._grid.side - 1)
        return np.array([x, y], dtype=np.int64)

    def adjacent_cells(self, cell_id: int) -> list[int]:
        """Identifiers of the (up to 4) cells sharing a side with ``cell_id``."""
        cx, cy = self.cell_coords(cell_id)
        out: list[int] = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = int(cx) + dx, int(cy) + dy
            if 0 <= nx < self._cells_per_side and 0 <= ny < self._cells_per_side:
                out.append(nx * self._cells_per_side + ny)
        return out

    def occupancy(self, positions: np.ndarray) -> np.ndarray:
        """Number of agents in each cell (length ``n_cells`` array)."""
        cells = np.atleast_1d(self.cell_of(positions))
        return np.bincount(cells, minlength=self.n_cells)

    # ------------------------------------------------------------------ #
    def new_reach_record(self) -> CellReachRecord:
        """Fresh record with all cells marked unreached (time ``-1``)."""
        return CellReachRecord(
            reach_times=np.full(self.n_cells, -1, dtype=np.int64),
            explorer=np.full(self.n_cells, -1, dtype=np.int64),
        )

    def update_reach_record(
        self,
        record: CellReachRecord,
        positions: np.ndarray,
        informed: np.ndarray,
        time: int,
    ) -> CellReachRecord:
        """Mark cells currently hosting informed agents as reached at ``time``.

        The first informed agent observed in an unreached cell becomes the
        cell's *explorer*, mirroring the terminology of the proof.
        """
        informed = np.asarray(informed, dtype=bool)
        if not informed.any():
            return record
        informed_idx = np.flatnonzero(informed)
        cells = np.atleast_1d(self.cell_of(np.asarray(positions)[informed_idx]))
        for agent, cell in zip(informed_idx, cells):
            if record.reach_times[cell] < 0:
                record.reach_times[cell] = time
                record.explorer[cell] = agent
        return record
