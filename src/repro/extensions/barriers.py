"""Broadcast in planar domains with mobility and communication barriers.

This is the future-work extension sketched at the end of Section 4 of the
paper.  The dynamics are exactly those of the core model — instantaneous
flooding within connected components of the visibility graph, followed by one
lazy random-walk step per agent — except that

* agents live on the *free* nodes of an :class:`ObstacleGrid` and never step
  onto blocked nodes (mobility barrier);
* optionally, two agents within the transmission radius are connected only
  when the straight segment between them avoids blocked nodes
  (communication barrier / line of sight).

The interesting new phenomenon is the *bottleneck effect*: a wall with a
narrow gap slows broadcast down because the rumor can cross only through the
gap, and the slowdown grows as the gap narrows (experiment E17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.connectivity.barriers import barrier_visibility_components
from repro.connectivity.visibility import visibility_components
from repro.core.config import BroadcastConfig, default_max_steps
from repro.core.protocol import flood_informed
from repro.core.runner import (
    ReplicationSummary,
    run_broadcast_replications,
    summarise_values,
)
from repro.grid.obstacles import ObstacleGrid
from repro.mobility.obstacle_walk import ObstacleWalkMobility
from repro.util.rng import RandomState, SeedLike, default_rng
from repro.util.validation import check_non_negative, check_positive_int


@dataclass(frozen=True)
class BarrierBroadcastResult:
    """Outcome of a broadcast run in an obstacle domain."""

    n_free_nodes: int
    n_agents: int
    radius: float
    broadcast_time: int
    completed: bool
    n_steps: int
    informed_curve: np.ndarray


class BarrierBroadcastSimulation:
    """Single-rumor broadcast among agents confined to an obstacle domain.

    Parameters
    ----------
    domain:
        The obstacle domain (mobility barriers; also communication barriers
        when ``block_communication`` is True).
    n_agents:
        Number of agents, placed uniformly at random on the free nodes.
    radius:
        Transmission radius (Manhattan metric).
    block_communication:
        Whether obstacles also block transmission (line-of-sight model).
        With ``radius = 0`` this flag is irrelevant.
    source:
        Index of the initially informed agent (``None`` = uniformly random).
    max_steps:
        Simulation horizon; the default scales like the open-grid horizon on
        the number of *free* nodes.
    """

    def __init__(
        self,
        domain: ObstacleGrid,
        n_agents: int,
        radius: float = 0.0,
        block_communication: bool = True,
        source: Optional[int] = None,
        max_steps: Optional[int] = None,
        rng: RandomState | int | None = None,
    ) -> None:
        self._domain = domain
        self._n_agents = check_positive_int(n_agents, "n_agents")
        self._radius = check_non_negative(radius, "radius")
        self._block_communication = bool(block_communication)
        self._rng = default_rng(rng)
        if max_steps is None:
            max_steps = default_barrier_horizon(domain, n_agents)
        self._horizon = check_positive_int(max_steps, "max_steps")

        self._mobility = ObstacleWalkMobility(domain)
        self._positions = self._mobility.initial_positions(self._n_agents, self._rng)
        self._informed = np.zeros(self._n_agents, dtype=bool)
        if source is None:
            source = int(self._rng.integers(0, self._n_agents))
        if not (0 <= int(source) < self._n_agents):
            raise ValueError(f"source must lie in [0, {self._n_agents}), got {source}")
        self._informed[int(source)] = True
        self._time = 0
        self._broadcast_time = -1
        self._informed_curve: list[int] = []

    # ------------------------------------------------------------------ #
    @property
    def domain(self) -> ObstacleGrid:
        """The obstacle domain."""
        return self._domain

    @property
    def positions(self) -> np.ndarray:
        """Current agent positions (copy)."""
        return self._positions.copy()

    @property
    def informed(self) -> np.ndarray:
        """Boolean mask of informed agents (copy)."""
        return self._informed.copy()

    @property
    def time(self) -> int:
        """Number of completed time steps."""
        return self._time

    @property
    def broadcast_time(self) -> int:
        """The broadcast time (``-1`` while incomplete)."""
        return self._broadcast_time

    # ------------------------------------------------------------------ #
    def _labels(self) -> np.ndarray:
        if self._radius > 0 and self._block_communication and self._domain.n_blocked > 0:
            return barrier_visibility_components(
                self._positions, self._radius, self._domain
            )
        return visibility_components(self._positions, self._radius)

    def step(self) -> None:
        """One time step: barrier-aware exchange, recording, then motion."""
        self._informed = flood_informed(self._informed, self._labels())
        self._informed_curve.append(int(self._informed.sum()))
        if self._broadcast_time < 0 and self._informed.all():
            self._broadcast_time = self._time
        self._positions = self._mobility.step(self._positions, self._rng)
        self._time += 1

    def run(self, max_steps: Optional[int] = None) -> BarrierBroadcastResult:
        """Run until every agent is informed or the horizon is exhausted."""
        horizon = int(max_steps) if max_steps is not None else self._horizon
        while self._time < horizon and self._broadcast_time < 0:
            self.step()
        return BarrierBroadcastResult(
            n_free_nodes=self._domain.n_free,
            n_agents=self._n_agents,
            radius=self._radius,
            broadcast_time=self._broadcast_time,
            completed=self._broadcast_time >= 0,
            n_steps=self._time,
            informed_curve=np.asarray(self._informed_curve, dtype=np.int64),
        )


def default_barrier_horizon(domain: ObstacleGrid, n_agents: int) -> int:
    """Default horizon for obstacle domains.

    Scales like the open-grid horizon on the number of *free* nodes, doubled
    because bottlenecks slow mixing down.
    """
    return 2 * default_max_steps(max(domain.n_free, 2), n_agents)


def run_barrier_broadcast_replications(
    domain: ObstacleGrid,
    n_agents: int,
    n_replications: int,
    *,
    radius: float = 0.0,
    block_communication: bool = True,
    max_steps: Optional[int] = None,
    seed: SeedLike = None,
    backend: Optional[str] = None,
) -> tuple[ReplicationSummary, list[BarrierBroadcastResult]]:
    """Replicated barrier broadcast, on the fast batched path where possible.

    Whenever the communication barriers are inert — ``radius == 0`` (the
    paper's sparse regime), ``block_communication`` off, or an obstacle-free
    domain — the run is exactly an open-core broadcast under obstacle-walk
    mobility, so it is dispatched through
    :func:`repro.core.runner.run_broadcast_replications` with
    ``mobility="obstacle_walk"`` and inherits the batched backend (the
    ``backend`` argument and :func:`repro.core.runner.backend_override` both
    apply).  Only line-of-sight configurations fall back to one serial
    :class:`BarrierBroadcastSimulation` per trial; per-trial results are
    bit-for-bit identical between the two routes for identical seeds.
    """
    check_positive_int(n_replications, "n_replications")
    if max_steps is None:
        max_steps = default_barrier_horizon(domain, n_agents)
    needs_line_of_sight = (
        radius > 0 and block_communication and domain.n_blocked > 0
    )
    if not needs_line_of_sight:
        config = BroadcastConfig(
            n_nodes=domain.side * domain.side,
            n_agents=n_agents,
            radius=radius,
            max_steps=max_steps,
            mobility="obstacle_walk",
            mobility_kwargs={"domain": domain},
        )
        summary, core_results = run_broadcast_replications(
            config, n_replications, seed=seed, backend=backend
        )
        results = [
            BarrierBroadcastResult(
                n_free_nodes=domain.n_free,
                n_agents=n_agents,
                radius=radius,
                broadcast_time=res.broadcast_time,
                completed=res.completed,
                n_steps=res.n_steps,
                informed_curve=res.informed_curve,
            )
            for res in core_results
        ]
        return summary, results
    from repro.exec.executor import map_replications

    raw = map_replications(
        _line_of_sight_trial,
        n_replications,
        seed,
        kwargs={
            "domain": domain,
            "n_agents": n_agents,
            "radius": radius,
            "block_communication": block_communication,
            "max_steps": max_steps,
        },
        label=f"barrier[n_free={domain.n_free},k={n_agents},r={radius}]",
    )
    results = [_barrier_result(item) for item in raw]
    summary = summarise_values([res.broadcast_time for res in results])
    return summary, results


def _line_of_sight_trial(
    rng,
    domain: ObstacleGrid,
    n_agents: int,
    radius: float,
    block_communication: bool,
    max_steps: int,
) -> BarrierBroadcastResult:
    """One serial line-of-sight replication (executor map-unit trial)."""
    return BarrierBroadcastSimulation(
        domain,
        n_agents,
        radius=radius,
        block_communication=block_communication,
        max_steps=max_steps,
        rng=rng,
    ).run()


def _barrier_result(item) -> BarrierBroadcastResult:
    """Normalise a map-unit trial payload back to a result object.

    The inline path hands results through unchanged; the sharded/stored path
    hands back their canonical JSON records.
    """
    if isinstance(item, BarrierBroadcastResult):
        return item
    fields = dict(item)
    fields["informed_curve"] = np.asarray(fields["informed_curve"], dtype=np.int64)
    return BarrierBroadcastResult(**fields)
