"""Extensions beyond the paper's core model.

The paper's Section 4 closes by listing, as future work, the extension of the
model "to handle more complex planar domains that include both communication
and mobility barriers".  :mod:`repro.extensions.barriers` implements that
extension on top of the library's substrates: obstacle domains
(:class:`repro.grid.obstacles.ObstacleGrid`), barrier-aware mobility
(:class:`repro.mobility.obstacle_walk.ObstacleWalkMobility`) and
line-of-sight-constrained visibility
(:func:`repro.connectivity.barriers.barrier_visibility_components`).
"""

from repro.extensions.barriers import BarrierBroadcastSimulation, BarrierBroadcastResult

__all__ = ["BarrierBroadcastSimulation", "BarrierBroadcastResult"]
