"""Sharded parallel sweep execution with deterministic resume.

Public surface of the ``repro.exec`` subsystem:

* :class:`SweepExecutor` — decomposes replicated measurements into
  (sweep-point × replication-chunk) work units, runs them in process or
  over a process pool, and merges the records back;
* :class:`ResultStore` — the on-disk record store that makes interrupted
  sweeps resumable;
* :func:`execution_override` / :func:`current_executor` — the process-wide
  override through which ``--jobs`` / ``--resume`` reach every experiment's
  replication loops;
* :func:`map_replications` — the executor-aware per-trial map experiments
  use for custom (non broadcast/gossip) replication loops;
* :class:`WorkUnit` / :func:`unit_key` / :class:`SeedStreamSpec` — the
  work-unit model, for building custom sweeps on the executor directly;
* :class:`RetryPolicy` / :class:`ExecutionReport` — the fault-tolerance
  layer: bounded retries with deterministic backoff, per-unit timeouts,
  worker-crash recovery, and the per-run observability snapshot;
* :class:`LeaseTable` — cooperative unit ownership for concurrent or
  restarted executors sharing one store;
* :class:`FaultPlan` / :class:`FaultInjectionError` — the deterministic
  fault-injection harness the chaos suite drives.

See ``docs/PARALLEL.md`` for the work-unit model, the determinism contract,
resume semantics and the fault-tolerance layer.
"""

from repro.exec.executor import (
    AGGREGATES,
    ExecutionReport,
    RetryPolicy,
    SweepExecutor,
    check_aggregate,
    current_executor,
    execute_unit,
    execution_override,
    map_replications,
    run_unit_with_faults,
)
from repro.exec.faults import FaultInjectionError, FaultPlan
from repro.exec.leases import LeaseTable
from repro.exec.seeds import SeedStreamSpec
from repro.exec.store import ResultStore
from repro.exec.units import (
    WorkUnit,
    chunk_bounds,
    default_chunk_size,
    record_matches_unit,
    unit_key,
)

__all__ = [
    "AGGREGATES",
    "ExecutionReport",
    "check_aggregate",
    "FaultInjectionError",
    "FaultPlan",
    "LeaseTable",
    "RetryPolicy",
    "SweepExecutor",
    "ResultStore",
    "SeedStreamSpec",
    "WorkUnit",
    "chunk_bounds",
    "current_executor",
    "default_chunk_size",
    "execute_unit",
    "execution_override",
    "map_replications",
    "record_matches_unit",
    "run_unit_with_faults",
    "unit_key",
]
