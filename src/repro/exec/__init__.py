"""Sharded parallel sweep execution with deterministic resume.

Public surface of the ``repro.exec`` subsystem:

* :class:`SweepExecutor` — decomposes replicated measurements into
  (sweep-point × replication-chunk) work units, runs them in process, over
  a process pool, or over HTTP workers (``dispatch="remote"``), and merges
  the records back;
* :class:`ResultStore` — the on-disk record store that makes interrupted
  sweeps resumable;
* :func:`execution_override` / :func:`current_executor` — the ambient
  override through which ``--jobs`` / ``--resume`` reach every experiment's
  replication loops;
* :func:`map_replications` — the executor-aware per-trial map experiments
  use for custom (non broadcast/gossip) replication loops;
* :class:`WorkUnit` / :func:`unit_key` / :class:`SeedStreamSpec` — the
  work-unit model, for building custom sweeps on the executor directly;
* :class:`RetryPolicy` / :class:`ExecutionReport` — the fault-tolerance
  layer: bounded retries with deterministic backoff, per-unit timeouts,
  worker-crash recovery, and the per-run observability snapshot;
* :class:`LeaseTable` — cooperative unit ownership for concurrent or
  restarted executors sharing one store;
* :class:`FaultPlan` / :class:`FaultInjectionError` /
  :class:`TransportFaultPlan` — the deterministic fault-injection harness
  the chaos suite drives (process faults and HTTP transport faults);
* :class:`Coordinator` / :func:`run_worker` — the multi-host transport:
  an embedded HTTP coordinator serving the unit lifecycle (v1 one-unit
  endpoints and v2 batched claim/push), and the worker loop behind
  ``repro worker --coordinator URL`` (batched, pipelined, keep-alive);
* :class:`CoordinatorClient` — the persistent JSON-over-HTTP client the
  worker (and tests) speak to a coordinator with
  (:mod:`repro.exec.transport`);
* :func:`encode_unit` / :func:`decode_unit` / :func:`unit_is_remotable` —
  the wire codecs, plus the v2 batch message types
  (:class:`ClaimBatchRequest` … :class:`PushBatchResponse`) and the
  version constants (:mod:`repro.exec.protocol`).

See ``docs/PARALLEL.md`` for the work-unit model, the determinism contract,
resume semantics and the fault-tolerance layer, and ``docs/DISTRIBUTED.md``
for the coordinator/worker protocol.
"""

from repro.exec.executor import (
    AGGREGATES,
    DISPATCH_MODES,
    ExecutionReport,
    RetryPolicy,
    SweepExecutor,
    check_aggregate,
    check_dispatch,
    current_executor,
    execute_unit,
    execution_override,
    map_replications,
    run_unit_with_faults,
)
from repro.exec.faults import FaultInjectionError, FaultPlan, TransportFaultPlan
from repro.exec.leases import LeaseTable
from repro.exec.protocol import (
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BATCH,
    SUPPORTED_PROTOCOL_VERSIONS,
    ClaimBatchRequest,
    ClaimBatchResponse,
    LeaseGrant,
    ProtocolError,
    PushAck,
    PushBatchRequest,
    PushBatchResponse,
    PushEntry,
    canonical_json,
    decode_unit,
    encode_unit,
    unit_is_remotable,
)
from repro.exec.remote import (
    Coordinator,
    CoordinatorClient,
    WorkerStats,
    idle_backoff_delay,
    run_worker,
)
from repro.exec.seeds import SeedStreamSpec
from repro.exec.store import ResultStore
from repro.exec.units import (
    WorkUnit,
    chunk_bounds,
    default_chunk_size,
    record_matches_unit,
    unit_key,
)

__all__ = [
    "AGGREGATES",
    "DISPATCH_MODES",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_BATCH",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "ClaimBatchRequest",
    "ClaimBatchResponse",
    "Coordinator",
    "CoordinatorClient",
    "ExecutionReport",
    "LeaseGrant",
    "PushAck",
    "PushBatchRequest",
    "PushBatchResponse",
    "PushEntry",
    "check_aggregate",
    "check_dispatch",
    "FaultInjectionError",
    "FaultPlan",
    "LeaseTable",
    "ProtocolError",
    "RetryPolicy",
    "SweepExecutor",
    "ResultStore",
    "SeedStreamSpec",
    "TransportFaultPlan",
    "WorkUnit",
    "WorkerStats",
    "canonical_json",
    "chunk_bounds",
    "current_executor",
    "decode_unit",
    "default_chunk_size",
    "encode_unit",
    "execute_unit",
    "execution_override",
    "idle_backoff_delay",
    "map_replications",
    "record_matches_unit",
    "run_unit_with_faults",
    "run_worker",
    "unit_is_remotable",
    "unit_key",
]
