"""Wire protocol for multi-host sweep execution.

Everything that crosses the coordinator/worker HTTP boundary is defined
here: JSON codecs for :class:`~repro.exec.units.WorkUnit`\\ s (including the
simulation configs inside them) and the request/response message shapes of
the coordinator API (:mod:`repro.exec.remote`).

Design rules
------------
* **Canonical JSON everywhere.**  Bodies are serialised with
  :func:`canonical_json` (sorted keys, no whitespace), so byte-equality of
  two encoded documents is exactly value-equality — which is what lets the
  coordinator accept a double-pushed record idempotently by comparing bytes.
* **Strict decoding.**  Every ``from_json`` / ``decode_*`` function
  validates shape and types and raises :class:`ProtocolError` on anything
  malformed; a bad message must be rejected at the boundary, never handed
  half-parsed to the executor.
* **Round-trip fidelity.**  ``decode(encode(x)) == x`` for every unit and
  message — the property the Hypothesis suite in
  ``tests/test_exec_protocol.py`` pins down.  This is what makes a unit's
  result independent of *where* it executes: the worker rebuilds exactly
  the unit the coordinator decomposed.

Only ``"broadcast"``, ``"gossip"`` and ``"process"`` units cross the wire
(:data:`REMOTE_KINDS`): their payloads are pure data (a config dataclass or
a registered process-kernel spec).  ``"map"`` payloads hold live callables
and never leave the coordinator process — the executor runs them inline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.core.config import BroadcastConfig, GossipConfig
from repro.exec.seeds import SeedStreamSpec
from repro.exec.units import UNIT_KINDS, WorkUnit
from repro.util.serialization import to_jsonable

#: Version stamped on every encoded unit document.  The unit wire format has
#: never changed, so v1 and v2 peers exchange identical unit documents; only
#: the coordinator API grew (see :data:`PROTOCOL_VERSION_BATCH`).
PROTOCOL_VERSION = 1

#: Highest coordinator-API capability version this side implements.  v2 adds
#: the batched endpoints (``/api/v2/claim`` with inlined unit payloads,
#: ``/api/v2/push`` with per-unit acks); unit documents stay v1.  The
#: register handshake negotiates ``min(worker, coordinator)``.
PROTOCOL_VERSION_BATCH = 2

#: Handshake versions a coordinator accepts (a v1 worker keeps working
#: against a v2 coordinator over the single-unit endpoints).
SUPPORTED_PROTOCOL_VERSIONS = (1, 2)

#: Unit kinds whose payloads survive JSON encoding (see module docstring).
REMOTE_KINDS = ("broadcast", "gossip", "process")

#: Config dataclasses allowed inside simulation-unit payloads.
_CONFIG_TYPES: dict[str, type] = {
    "BroadcastConfig": BroadcastConfig,
    "GossipConfig": GossipConfig,
}


class ProtocolError(ValueError):
    """A message or unit document that does not conform to the protocol."""


def canonical_json(document: Any) -> str:
    """``document`` as canonical JSON (sorted keys, minimal separators).

    Two value-equal documents always canonicalise to identical bytes, so
    byte comparison of canonical forms is value comparison — the idempotent
    double-push check relies on this.
    """
    try:
        return json.dumps(document, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"document is not JSON-able: {exc}") from exc


# --------------------------------------------------------------------------- #
# Strict field extraction
# --------------------------------------------------------------------------- #
def _expect_mapping(document: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(document, Mapping):
        raise ProtocolError(f"{what} must be a JSON object, got {type(document).__name__}")
    return document


def _field(document: Mapping[str, Any], name: str, what: str) -> Any:
    if name not in document:
        raise ProtocolError(f"{what} is missing required field {name!r}")
    return document[name]


def _str_field(document: Mapping[str, Any], name: str, what: str) -> str:
    value = _field(document, name, what)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"{what}.{name} must be a non-empty string, got {value!r}")
    return value


def _int_field(document: Mapping[str, Any], name: str, what: str) -> int:
    value = _field(document, name, what)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{what}.{name} must be an integer, got {value!r}")
    return value


def _dict_field(document: Mapping[str, Any], name: str, what: str) -> dict[str, Any]:
    value = _field(document, name, what)
    if not isinstance(value, Mapping):
        raise ProtocolError(f"{what}.{name} must be a JSON object, got {type(value).__name__}")
    return dict(value)


# --------------------------------------------------------------------------- #
# Config + unit codecs
# --------------------------------------------------------------------------- #
def encode_config(config: Any) -> dict[str, Any]:
    """A simulation config dataclass as a typed JSON document."""
    type_name = type(config).__name__
    if type_name not in _CONFIG_TYPES:
        raise ProtocolError(f"unsupported config type {type_name!r}")
    try:
        fields = to_jsonable(config)
    except TypeError as exc:
        # e.g. a barrier domain object in mobility_kwargs: such configs have
        # no faithful JSON form and their units stay on the coordinator.
        raise ProtocolError(f"config {type_name} is not JSON-able: {exc}") from exc
    return {"type": type_name, "fields": fields}


def decode_config(document: Any) -> Any:
    """Inverse of :func:`encode_config` (strictly validated)."""
    document = _expect_mapping(document, "config document")
    type_name = _str_field(document, "type", "config document")
    cls = _CONFIG_TYPES.get(type_name)
    if cls is None:
        raise ProtocolError(f"unsupported config type {type_name!r}")
    fields = _dict_field(document, "fields", "config document")
    try:
        return cls(**fields)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid {type_name} fields: {exc}") from exc


def _encode_payload(kind: str, payload: Mapping[str, Any]) -> dict[str, Any]:
    if kind in ("broadcast", "gossip"):
        return {"config": encode_config(_field(payload, "config", "unit payload"))}
    if kind == "process":
        spec = _field(payload, "process", "unit payload")
        try:
            spec = to_jsonable(spec)
        except TypeError as exc:
            raise ProtocolError(f"process spec is not JSON-able: {exc}") from exc
        spec = _expect_mapping(spec, "process spec")
        _str_field(spec, "name", "process spec")
        return {"process": dict(spec)}
    raise ProtocolError(
        f"unit kind {kind!r} does not cross the wire (its payload holds live objects)"
    )


def _decode_payload(kind: str, document: Any) -> dict[str, Any]:
    document = _expect_mapping(document, "unit payload")
    if kind in ("broadcast", "gossip"):
        return {"config": decode_config(_field(document, "config", "unit payload"))}
    spec = _dict_field(document, "process", "unit payload")
    _str_field(spec, "name", "process spec")
    kwargs = spec.get("kwargs")
    if kwargs is not None and not isinstance(kwargs, Mapping):
        raise ProtocolError(f"process spec kwargs must be a JSON object, got {kwargs!r}")
    return {"process": spec}


def encode_unit(unit: WorkUnit) -> dict[str, Any]:
    """A :class:`WorkUnit` as a JSON document (raises for non-remote kinds)."""
    return {
        "version": PROTOCOL_VERSION,
        "label": unit.label,
        "kind": unit.kind,
        "payload": _encode_payload(unit.kind, unit.payload),
        "n_replications": unit.n_replications,
        "start": unit.start,
        "stop": unit.stop,
        "seed": unit.seed.as_json(),
        "backend": unit.backend,
        "connectivity": unit.connectivity,
    }


def decode_unit(document: Any) -> WorkUnit:
    """Inverse of :func:`encode_unit` (strictly validated)."""
    document = _expect_mapping(document, "unit document")
    version = _int_field(document, "version", "unit document")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: unit is v{version}, this side speaks v{PROTOCOL_VERSION}"
        )
    kind = _str_field(document, "kind", "unit document")
    if kind not in REMOTE_KINDS or kind not in UNIT_KINDS:
        raise ProtocolError(f"unit kind must be one of {REMOTE_KINDS}, got {kind!r}")
    for name in ("backend", "connectivity"):
        value = document.get(name)
        if value is not None and not isinstance(value, str):
            raise ProtocolError(f"unit document.{name} must be a string or null, got {value!r}")
    try:
        seed = SeedStreamSpec.from_json(_dict_field(document, "seed", "unit document"))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid seed spec: {exc}") from exc
    try:
        return WorkUnit(
            label=_str_field(document, "label", "unit document"),
            kind=kind,
            payload=_decode_payload(kind, _field(document, "payload", "unit document")),
            n_replications=_int_field(document, "n_replications", "unit document"),
            start=_int_field(document, "start", "unit document"),
            stop=_int_field(document, "stop", "unit document"),
            seed=seed,
            backend=document.get("backend"),
            connectivity=document.get("connectivity"),
        )
    except ValueError as exc:
        raise ProtocolError(f"invalid unit document: {exc}") from exc


def unit_is_remotable(unit: WorkUnit) -> bool:
    """Whether ``unit`` survives the wire (kind and payload both encode)."""
    try:
        encode_unit(unit)
        return True
    except ProtocolError:
        return False


# --------------------------------------------------------------------------- #
# Coordinator API messages
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RegisterRequest:
    """``POST /api/register`` body: a worker announcing itself."""

    worker: str
    pid: int = 0
    host: str = ""
    version: int = PROTOCOL_VERSION

    def as_json(self) -> dict[str, Any]:
        return {"worker": self.worker, "pid": self.pid, "host": self.host, "version": self.version}

    @classmethod
    def from_json(cls, document: Any) -> "RegisterRequest":
        document = _expect_mapping(document, "register request")
        host = document.get("host", "")
        if not isinstance(host, str):
            raise ProtocolError(f"register request.host must be a string, got {host!r}")
        return cls(
            worker=_str_field(document, "worker", "register request"),
            pid=_int_field(document, "pid", "register request") if "pid" in document else 0,
            host=host,
            version=_int_field(document, "version", "register request"),
        )


@dataclass(frozen=True)
class RegisterResponse:
    """``POST /api/register`` response: the coordinator's operating terms.

    ``protocol`` is the negotiated coordinator-API capability version
    (``min(worker, coordinator)``): ``>= 2`` means the batched
    ``/api/v2/claim`` / ``/api/v2/push`` endpoints are available.  A pre-v2
    coordinator omits the field, which decodes as ``1``.
    """

    worker: str
    lease_ttl: float
    poll_interval: float
    protocol: int = 1

    def as_json(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "lease_ttl": self.lease_ttl,
            "poll_interval": self.poll_interval,
            "protocol": self.protocol,
        }

    @classmethod
    def from_json(cls, document: Any) -> "RegisterResponse":
        document = _expect_mapping(document, "register response")
        protocol = document.get("protocol", 1)
        if isinstance(protocol, bool) or not isinstance(protocol, int):
            raise ProtocolError(
                f"register response.protocol must be an integer, got {protocol!r}"
            )
        return cls(
            worker=_str_field(document, "worker", "register response"),
            lease_ttl=float(_field(document, "lease_ttl", "register response")),
            poll_interval=float(_field(document, "poll_interval", "register response")),
            protocol=protocol,
        )


@dataclass(frozen=True)
class ClaimRequest:
    """``POST /api/claim`` body: a registered worker asking for a unit."""

    worker: str

    def as_json(self) -> dict[str, Any]:
        return {"worker": self.worker}

    @classmethod
    def from_json(cls, document: Any) -> "ClaimRequest":
        document = _expect_mapping(document, "claim request")
        return cls(worker=_str_field(document, "worker", "claim request"))


@dataclass(frozen=True)
class ClaimResponse:
    """``POST /api/claim`` response.

    ``status`` is ``"unit"`` (a lease on ``key`` is now held by the worker,
    whose record push must echo ``fingerprint``), ``"idle"`` (everything
    pending is leased elsewhere — poll again after ``retry_after``) or
    ``"done"`` (the coordinator is finished; the worker should exit).
    """

    status: str
    key: Optional[str] = None
    fingerprint: Optional[dict[str, Any]] = None
    retry_after: float = 0.5

    STATUSES = ("unit", "idle", "done")

    def as_json(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "retry_after": self.retry_after,
        }

    @classmethod
    def from_json(cls, document: Any) -> "ClaimResponse":
        document = _expect_mapping(document, "claim response")
        status = _str_field(document, "status", "claim response")
        if status not in cls.STATUSES:
            raise ProtocolError(f"claim status must be one of {cls.STATUSES}, got {status!r}")
        key = document.get("key")
        if status == "unit":
            if not isinstance(key, str) or not key:
                raise ProtocolError(f"claim response.key must be a non-empty string, got {key!r}")
            fingerprint = _dict_field(document, "fingerprint", "claim response")
        else:
            key, fingerprint = None, None
        retry_after = document.get("retry_after", 0.5)
        if not isinstance(retry_after, (int, float)) or isinstance(retry_after, bool):
            raise ProtocolError(f"claim response.retry_after must be a number, got {retry_after!r}")
        return cls(status=status, key=key, fingerprint=fingerprint, retry_after=float(retry_after))


@dataclass(frozen=True)
class HeartbeatRequest:
    """``POST /api/heartbeat`` body: leases the worker is still working on."""

    worker: str
    keys: tuple[str, ...] = ()

    def as_json(self) -> dict[str, Any]:
        return {"worker": self.worker, "keys": list(self.keys)}

    @classmethod
    def from_json(cls, document: Any) -> "HeartbeatRequest":
        document = _expect_mapping(document, "heartbeat request")
        keys = _field(document, "keys", "heartbeat request")
        if not isinstance(keys, list) or not all(isinstance(k, str) and k for k in keys):
            raise ProtocolError(f"heartbeat request.keys must be a list of keys, got {keys!r}")
        return cls(
            worker=_str_field(document, "worker", "heartbeat request"),
            keys=tuple(keys),
        )


@dataclass(frozen=True)
class FailureReport:
    """``POST /api/fail`` body: a worker reporting a unit it could not run.

    The coordinator releases the worker's lease so another worker retries
    immediately instead of waiting out the TTL; units that keep failing are
    eventually declared dead (see ``Coordinator.max_unit_failures``).
    """

    worker: str
    key: str
    error: str = ""

    def as_json(self) -> dict[str, Any]:
        return {"worker": self.worker, "key": self.key, "error": self.error}

    @classmethod
    def from_json(cls, document: Any) -> "FailureReport":
        document = _expect_mapping(document, "failure report")
        error = document.get("error", "")
        if not isinstance(error, str):
            raise ProtocolError(f"failure report.error must be a string, got {error!r}")
        return cls(
            worker=_str_field(document, "worker", "failure report"),
            key=_str_field(document, "key", "failure report"),
            error=error,
        )


@dataclass(frozen=True)
class PushRequest:
    """``POST /api/push`` body: a completed unit's canonical record.

    ``fingerprint`` must echo the fingerprint the claim handed out; the
    coordinator verifies it against the unit's own fingerprint before the
    record may touch the store.
    """

    worker: str
    key: str
    fingerprint: dict[str, Any]
    record: dict[str, Any]

    def as_json(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "key": self.key,
            "fingerprint": self.fingerprint,
            "record": self.record,
        }

    @classmethod
    def from_json(cls, document: Any) -> "PushRequest":
        document = _expect_mapping(document, "push request")
        return cls(
            worker=_str_field(document, "worker", "push request"),
            key=_str_field(document, "key", "push request"),
            fingerprint=_dict_field(document, "fingerprint", "push request"),
            record=_dict_field(document, "record", "push request"),
        )


@dataclass(frozen=True)
class PushResponse:
    """``POST /api/push`` response: ``"stored"`` or ``"duplicate"``.

    ``"duplicate"`` acknowledges a byte-equal re-push of an already-stored
    record — the normal outcome of a retried push whose first response was
    lost, and of a double-run after a lease steal.
    """

    status: str

    STATUSES = ("stored", "duplicate")

    def as_json(self) -> dict[str, Any]:
        return {"status": self.status}

    @classmethod
    def from_json(cls, document: Any) -> "PushResponse":
        document = _expect_mapping(document, "push response")
        status = _str_field(document, "status", "push response")
        if status not in cls.STATUSES:
            raise ProtocolError(f"push status must be one of {cls.STATUSES}, got {status!r}")
        return cls(status=status)


# --------------------------------------------------------------------------- #
# Coordinator API v2: batched claim and push
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ClaimBatchRequest:
    """``POST /api/v2/claim`` body: ask for up to ``max_units`` leases at once."""

    worker: str
    max_units: int = 1

    def as_json(self) -> dict[str, Any]:
        return {"worker": self.worker, "max_units": self.max_units}

    @classmethod
    def from_json(cls, document: Any) -> "ClaimBatchRequest":
        document = _expect_mapping(document, "claim batch request")
        max_units = _int_field(document, "max_units", "claim batch request")
        if max_units < 1:
            raise ProtocolError(
                f"claim batch request.max_units must be >= 1, got {max_units!r}"
            )
        return cls(
            worker=_str_field(document, "worker", "claim batch request"),
            max_units=max_units,
        )


@dataclass(frozen=True)
class LeaseGrant:
    """One lease inside a :class:`ClaimBatchResponse`.

    The encoded unit document rides along (``unit``), so a v2 worker never
    needs the separate ``GET /api/unit/<key>`` round-trip.
    """

    key: str
    fingerprint: dict[str, Any]
    unit: dict[str, Any]

    def as_json(self) -> dict[str, Any]:
        return {"key": self.key, "fingerprint": self.fingerprint, "unit": self.unit}

    @classmethod
    def from_json(cls, document: Any) -> "LeaseGrant":
        document = _expect_mapping(document, "lease grant")
        return cls(
            key=_str_field(document, "key", "lease grant"),
            fingerprint=_dict_field(document, "fingerprint", "lease grant"),
            unit=_dict_field(document, "unit", "lease grant"),
        )


@dataclass(frozen=True)
class ClaimBatchResponse:
    """``POST /api/v2/claim`` response.

    ``status`` is ``"units"`` (``leases`` holds 1..max_units grants, unit
    payloads inlined), ``"idle"`` (nothing claimable right now — poll again
    after ``retry_after``) or ``"done"`` (the sweep is finished).
    """

    status: str
    leases: tuple[LeaseGrant, ...] = ()
    retry_after: float = 0.5

    STATUSES = ("units", "idle", "done")

    def as_json(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "leases": [lease.as_json() for lease in self.leases],
            "retry_after": self.retry_after,
        }

    @classmethod
    def from_json(cls, document: Any) -> "ClaimBatchResponse":
        document = _expect_mapping(document, "claim batch response")
        status = _str_field(document, "status", "claim batch response")
        if status not in cls.STATUSES:
            raise ProtocolError(
                f"claim batch status must be one of {cls.STATUSES}, got {status!r}"
            )
        raw = document.get("leases", [])
        if not isinstance(raw, list):
            raise ProtocolError(f"claim batch response.leases must be a list, got {raw!r}")
        leases = tuple(LeaseGrant.from_json(item) for item in raw)
        if status == "units" and not leases:
            raise ProtocolError("claim batch status 'units' requires at least one lease")
        if status != "units" and leases:
            raise ProtocolError(f"claim batch status {status!r} must carry no leases")
        retry_after = document.get("retry_after", 0.5)
        if not isinstance(retry_after, (int, float)) or isinstance(retry_after, bool):
            raise ProtocolError(
                f"claim batch response.retry_after must be a number, got {retry_after!r}"
            )
        return cls(status=status, leases=leases, retry_after=float(retry_after))


@dataclass(frozen=True)
class PushEntry:
    """One completed unit's record inside a :class:`PushBatchRequest`."""

    key: str
    fingerprint: dict[str, Any]
    record: dict[str, Any]

    def as_json(self) -> dict[str, Any]:
        return {"key": self.key, "fingerprint": self.fingerprint, "record": self.record}

    @classmethod
    def from_json(cls, document: Any) -> "PushEntry":
        document = _expect_mapping(document, "push entry")
        return cls(
            key=_str_field(document, "key", "push entry"),
            fingerprint=_dict_field(document, "fingerprint", "push entry"),
            record=_dict_field(document, "record", "push entry"),
        )


@dataclass(frozen=True)
class PushBatchRequest:
    """``POST /api/v2/push`` body: a batch of completed-unit records.

    Entries are validated independently server-side — one bad record is
    quarantined and acknowledged ``"rejected"`` without poisoning its
    batch-mates, which are stored through one group commit.
    """

    worker: str
    entries: tuple[PushEntry, ...]

    def as_json(self) -> dict[str, Any]:
        return {"worker": self.worker, "entries": [entry.as_json() for entry in self.entries]}

    @classmethod
    def from_json(cls, document: Any) -> "PushBatchRequest":
        document = _expect_mapping(document, "push batch request")
        raw = _field(document, "entries", "push batch request")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                f"push batch request.entries must be a non-empty list, got {raw!r}"
            )
        return cls(
            worker=_str_field(document, "worker", "push batch request"),
            entries=tuple(PushEntry.from_json(item) for item in raw),
        )


@dataclass(frozen=True)
class PushAck:
    """Per-unit acknowledgement inside a :class:`PushBatchResponse`."""

    key: str
    status: str
    error: str = ""

    STATUSES = ("stored", "duplicate", "rejected")

    def as_json(self) -> dict[str, Any]:
        return {"key": self.key, "status": self.status, "error": self.error}

    @classmethod
    def from_json(cls, document: Any) -> "PushAck":
        document = _expect_mapping(document, "push ack")
        status = _str_field(document, "status", "push ack")
        if status not in cls.STATUSES:
            raise ProtocolError(f"push ack status must be one of {cls.STATUSES}, got {status!r}")
        error = document.get("error", "")
        if not isinstance(error, str):
            raise ProtocolError(f"push ack.error must be a string, got {error!r}")
        return cls(key=_str_field(document, "key", "push ack"), status=status, error=error)


@dataclass(frozen=True)
class PushBatchResponse:
    """``POST /api/v2/push`` response: one :class:`PushAck` per entry, in order."""

    acks: tuple[PushAck, ...]

    def as_json(self) -> dict[str, Any]:
        return {"acks": [ack.as_json() for ack in self.acks]}

    @classmethod
    def from_json(cls, document: Any) -> "PushBatchResponse":
        document = _expect_mapping(document, "push batch response")
        raw = _field(document, "acks", "push batch response")
        if not isinstance(raw, list):
            raise ProtocolError(f"push batch response.acks must be a list, got {raw!r}")
        return cls(acks=tuple(PushAck.from_json(item) for item in raw))
