"""On-disk result store: one JSON record per completed work unit.

The store is what makes interrupted sweeps resumable: every completed
:class:`~repro.exec.units.WorkUnit` is written as ``<unit-key>.json`` under
the store directory, where the key is a content hash of the unit's
fingerprint (experiment label, payload, seed spec, chunk bounds, backend).
A re-run with the same parameters recomputes the same keys, finds the
records of completed units and skips their execution entirely — existing
record files are only ever *read*, never rewritten, so their mtimes are
untouched.

Hardening (what a store tolerates without poisoning a resume):

* Writes are atomic **and durable**: temp file + fsync + ``os.replace`` +
  directory fsync, so neither a kill mid-write nor a power loss right
  after a "completed" unit leaves a half-record behind.
* An unparseable or schema-invalid record file is **quarantined** — renamed
  to ``<key>.corrupt-<ns>`` so it never shadows the key again and stays on
  disk for forensics — and reported as a miss, so the unit simply
  re-executes.
* A structurally valid record whose stored *fingerprint* does not match the
  fingerprint the caller expects (a foreign or stale store, a truncated-key
  collision) is reported as a miss too, so it is re-executed rather than
  silently merged.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.metrics import Counter


class StoreStats:
    """Counters a :class:`ResultStore` accumulates, for execution reports.

    The attributes read and assign as plain ``int``s (the executor does
    ``stats.hits -= 1`` when it reclassifies a hit) but are backed by
    :class:`repro.obs.Counter` instruments, so an executor can adopt them
    into its :class:`~repro.obs.MetricsRegistry`.  See
    ``docs/OBSERVABILITY.md``.
    """

    def __init__(self) -> None:
        self._hits = Counter(
            "repro_store_hits_total", help="Work units satisfied from stored records."
        )
        self._misses = Counter(
            "repro_store_misses_total", help="Store lookups that required execution."
        )
        self._quarantined = Counter(
            "repro_store_quarantined_total", help="Corrupt record files moved aside."
        )
        self._fingerprint_mismatches = Counter(
            "repro_store_fingerprint_mismatches_total",
            help="Stored records rejected because their fingerprint did not match.",
        )

    def counters(self) -> tuple[Counter, ...]:
        """The backing instruments, for adoption into a registry."""
        return (self._hits, self._misses, self._quarantined, self._fingerprint_mismatches)

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set(value)

    @property
    def quarantined(self) -> int:
        return int(self._quarantined.value)

    @quarantined.setter
    def quarantined(self, value: int) -> None:
        self._quarantined.set(value)

    @property
    def fingerprint_mismatches(self) -> int:
        return int(self._fingerprint_mismatches.value)

    @fingerprint_mismatches.setter
    def fingerprint_mismatches(self, value: int) -> None:
        self._fingerprint_mismatches.set(value)


class ResultStore:
    """Directory of completed work-unit records, keyed by content hash."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    def path_for(self, key: str) -> Path:
        """Path of the record file for ``key``."""
        return self.directory / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(
        self, key: str, fingerprint: Optional[dict[str, Any]] = None
    ) -> Optional[dict[str, Any]]:
        """The stored record for ``key``, or ``None`` if absent or unusable.

        A file that exists but cannot be parsed, or parses to something
        other than a record document, is *quarantined* (renamed to
        ``<key>.corrupt-<ns>``) and treated as missing — a truncated file
        from a pre-atomic-write kill must never kill a ``--resume``.  When
        ``fingerprint`` is given, the stored document's fingerprint must
        match it exactly; a mismatch (foreign or stale store) is a miss, so
        the unit re-executes, but the file is left in place — it is a valid
        record, just not *this* unit's.
        """
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.quarantine(key)
            self.stats.misses += 1
            return None
        if (
            not isinstance(document, dict)
            or not isinstance(document.get("record"), dict)
            or not isinstance(document.get("fingerprint"), dict)
        ):
            self.quarantine(key)
            self.stats.misses += 1
            return None
        if fingerprint is not None and not _fingerprints_match(
            document["fingerprint"], fingerprint
        ):
            self.stats.fingerprint_mismatches += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return document["record"]

    def quarantine(self, key: str) -> Optional[Path]:
        """Move ``key``'s record file aside as ``<key>.corrupt-<ns>``.

        The rename keeps the evidence on disk without letting the file ever
        satisfy a lookup again (only ``*.json`` files are records).  Returns
        the quarantine path, or ``None`` if the file vanished underneath us.
        """
        path = self.path_for(key)
        target = path.with_name(f"{key}.corrupt-{time.time_ns()}")
        try:
            os.replace(path, target)
        except OSError:
            return None
        self.stats.quarantined += 1
        return target

    def quarantined_files(self) -> list[Path]:
        """All quarantined record files in the store directory."""
        return sorted(self.directory.glob("*.corrupt-*"))

    def put(self, key: str, record: dict[str, Any], fingerprint: Optional[dict] = None) -> Path:
        """Atomically and durably write ``record`` (plus fingerprint) under ``key``."""
        path = self.path_for(key)
        document = {"fingerprint": fingerprint or {}, "record": record}
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_directory(self.directory)
        return path

    def keys(self) -> list[str]:
        """Keys of all stored records."""
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())


def fingerprints_match(stored: dict[str, Any], expected: dict[str, Any]) -> bool:
    """Whether two unit fingerprints denote the same unit.

    The comparison is canonical-JSON equality with the ``stored`` side
    already JSON-round-tripped (tuples became lists, int keys became
    strings) — the exact check :meth:`ResultStore.get` applies to stored
    records.  The remote coordinator uses the same predicate to verify a
    pushed record's fingerprint server-side before it may touch the store.
    """
    return _fingerprints_match(stored, expected)


def _fingerprints_match(stored: dict[str, Any], expected: dict[str, Any]) -> bool:
    """Compare fingerprints canonically (the stored one is JSON-round-tripped)."""
    try:
        canonical_expected = json.dumps(expected, sort_keys=True, default=_jsonable_fallback)
        canonical_stored = json.dumps(stored, sort_keys=True)
    except (TypeError, ValueError):
        return False
    return canonical_stored == canonical_expected


def _jsonable_fallback(value: Any) -> Any:
    from repro.util.serialization import to_jsonable

    return to_jsonable(value)


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (best effort; not all filesystems allow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
