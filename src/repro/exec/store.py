"""On-disk result store: one JSON record per completed work unit.

The store is what makes interrupted sweeps resumable: every completed
:class:`~repro.exec.units.WorkUnit` is written as ``<unit-key>.json`` under
the store directory, where the key is a content hash of the unit's
fingerprint (experiment label, payload, seed spec, chunk bounds, backend).
A re-run with the same parameters recomputes the same keys, finds the
records of completed units and skips their execution entirely — existing
record files are only ever *read*, never rewritten, so their mtimes are
untouched.

Hardening (what a store tolerates without poisoning a resume):

* Writes are atomic **and durable**: temp file + fsync + ``os.replace`` +
  directory fsync, so neither a kill mid-write nor a power loss right
  after a "completed" unit leaves a half-record behind.
* Batched writes **group-commit**: :meth:`ResultStore.put_many` writes and
  fsyncs every record file, replaces them into place, then issues *one*
  directory fsync for the whole group — the same durability point as N
  individual ``put`` calls at 1/N the directory fsyncs.  A crash mid-batch
  can lose the tail of the group (records not yet replaced, or replaced but
  not yet directory-synced across a power loss); a resume simply re-executes
  the missing units, exactly as it would after N interrupted ``put`` calls.
* Reads are fronted by a small in-memory **LRU cache** of parsed documents
  (record files are immutable once written, so the cache can never go
  stale; quarantine and re-put invalidate the entry).  Resume- and
  dedup-heavy runs stop re-parsing the same records from disk.
* An unparseable or schema-invalid record file is **quarantined** — renamed
  to ``<key>.corrupt-<ns>`` so it never shadows the key again and stays on
  disk for forensics — and reported as a miss, so the unit simply
  re-executes.
* A structurally valid record whose stored *fingerprint* does not match the
  fingerprint the caller expects (a foreign or stale store, a truncated-key
  collision) is reported as a miss too, so it is re-executed rather than
  silently merged.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.obs.metrics import Counter

#: Default number of parsed record documents the read cache retains.
DEFAULT_CACHE_RECORDS = 256


class StoreStats:
    """Counters a :class:`ResultStore` accumulates, for execution reports.

    The attributes read and assign as plain ``int``s (the executor does
    ``stats.hits -= 1`` when it reclassifies a hit) but are backed by
    :class:`repro.obs.Counter` instruments, so an executor can adopt them
    into its :class:`~repro.obs.MetricsRegistry`.  See
    ``docs/OBSERVABILITY.md``.
    """

    def __init__(self) -> None:
        self._hits = Counter(
            "repro_store_hits_total", help="Work units satisfied from stored records."
        )
        self._misses = Counter(
            "repro_store_misses_total", help="Store lookups that required execution."
        )
        self._quarantined = Counter(
            "repro_store_quarantined_total", help="Corrupt record files moved aside."
        )
        self._fingerprint_mismatches = Counter(
            "repro_store_fingerprint_mismatches_total",
            help="Stored records rejected because their fingerprint did not match.",
        )

    def counters(self) -> tuple[Counter, ...]:
        """The backing instruments, for adoption into a registry."""
        return (self._hits, self._misses, self._quarantined, self._fingerprint_mismatches)

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.set(value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.set(value)

    @property
    def quarantined(self) -> int:
        return int(self._quarantined.value)

    @quarantined.setter
    def quarantined(self, value: int) -> None:
        self._quarantined.set(value)

    @property
    def fingerprint_mismatches(self) -> int:
        return int(self._fingerprint_mismatches.value)

    @fingerprint_mismatches.setter
    def fingerprint_mismatches(self, value: int) -> None:
        self._fingerprint_mismatches.set(value)


class ResultStore:
    """Directory of completed work-unit records, keyed by content hash.

    ``cache_records`` bounds the in-memory LRU read cache (``0`` disables
    it).  Cached entries are parsed record documents; because record files
    are immutable once written (existing records are only ever read), a
    cached entry can only be invalidated by :meth:`quarantine` or an
    explicit re-``put`` — both of which update the cache.
    """

    def __init__(
        self, directory: Union[str, Path], cache_records: int = DEFAULT_CACHE_RECORDS
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        #: LRU hits served without touching disk (diagnostic, not a metric).
        self.cache_hits = 0
        self._cache: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._cache_limit = max(0, int(cache_records))
        self._cache_lock = threading.Lock()
        # Lazily-created pool for overlapping slow-device fsyncs in
        # ``put_many``; never spawned while the store sits on fast storage.
        self._fsync_pool: Optional[ThreadPoolExecutor] = None
        self._fsync_pool_lock = threading.Lock()

    def path_for(self, key: str) -> Path:
        """Path of the record file for ``key``."""
        return self.directory / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(
        self, key: str, fingerprint: Optional[dict[str, Any]] = None
    ) -> Optional[dict[str, Any]]:
        """The stored record for ``key``, or ``None`` if absent or unusable.

        A file that exists but cannot be parsed, or parses to something
        other than a record document, is *quarantined* (renamed to
        ``<key>.corrupt-<ns>``) and treated as missing — a truncated file
        from a pre-atomic-write kill must never kill a ``--resume``.  When
        ``fingerprint`` is given, the stored document's fingerprint must
        match it exactly; a mismatch (foreign or stale store) is a miss, so
        the unit re-executes, but the file is left in place — it is a valid
        record, just not *this* unit's.
        """
        document = self._cache_get(key)
        if document is None:
            path = self.path_for(key)
            if not path.exists():
                self.stats.misses += 1
                return None
            try:
                with path.open("r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                self.quarantine(key)
                self.stats.misses += 1
                return None
            if (
                not isinstance(document, dict)
                or not isinstance(document.get("record"), dict)
                or not isinstance(document.get("fingerprint"), dict)
            ):
                self.quarantine(key)
                self.stats.misses += 1
                return None
            self._cache_put(key, document)
        else:
            self.cache_hits += 1
        if fingerprint is not None and not _fingerprints_match(
            document["fingerprint"], fingerprint
        ):
            self.stats.fingerprint_mismatches += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return document["record"]

    # -- read-cache internals ------------------------------------------------ #
    def _cache_get(self, key: str) -> Optional[dict[str, Any]]:
        if self._cache_limit == 0:
            return None
        with self._cache_lock:
            document = self._cache.get(key)
            if document is not None:
                self._cache.move_to_end(key)
            return document

    def _cache_put(self, key: str, document: dict[str, Any]) -> None:
        if self._cache_limit == 0:
            return
        with self._cache_lock:
            self._cache[key] = document
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_limit:
                self._cache.popitem(last=False)

    def _cache_drop(self, key: str) -> None:
        with self._cache_lock:
            self._cache.pop(key, None)

    def quarantine(self, key: str) -> Optional[Path]:
        """Move ``key``'s record file aside as ``<key>.corrupt-<ns>``.

        The rename keeps the evidence on disk without letting the file ever
        satisfy a lookup again (only ``*.json`` files are records).  Returns
        the quarantine path, or ``None`` if the file vanished underneath us.
        """
        self._cache_drop(key)
        path = self.path_for(key)
        target = path.with_name(f"{key}.corrupt-{time.time_ns()}")
        try:
            os.replace(path, target)
        except OSError:
            return None
        self.stats.quarantined += 1
        return target

    def quarantined_files(self) -> list[Path]:
        """All quarantined record files in the store directory."""
        return sorted(self.directory.glob("*.corrupt-*"))

    def put(self, key: str, record: dict[str, Any], fingerprint: Optional[dict] = None) -> Path:
        """Atomically and durably write ``record`` (plus fingerprint) under ``key``."""
        path = self._write_record(key, record, fingerprint)
        _fsync_directory(self.directory)
        return path

    def put_many(
        self, items: Sequence[tuple[str, dict[str, Any], Optional[dict]]]
    ) -> list[Path]:
        """Write a batch of ``(key, record, fingerprint)`` items with one group commit.

        Every record file is individually written, fsynced and atomically
        replaced into place — exactly as :meth:`put` does — but the
        directory fsync that makes the *names* durable is issued once for
        the whole batch.  The durability point is therefore identical to N
        sequential ``put`` calls at 1/N the directory fsyncs.

        The batch is committed in phases: every temp file is written, then
        all of them are fsynced, and only then are they replaced into place
        *in submission order*.  The fsync phase is adaptive: the first file
        is flushed inline to probe the device, and only when that probe is
        slow (a journaled or rotational disk) are the remaining flushes
        overlapped on a small persistent thread pool — ``fsync`` releases
        the GIL, so the per-file waits stack in parallel.  On fast storage
        (tmpfs, NVMe) the flushes stay serial: dispatching to a pool would
        cost more than the fsyncs themselves.  A crash mid-batch can therefore only lose a
        suffix of the group (records not yet replaced, or replaced but not
        yet directory-synced across a power loss): every name that is
        visible was replaced after its bytes were flushed.  A resume
        re-executes exactly the missing units, the same outcome as being
        killed between two individual ``put`` calls.
        """
        if not items:
            return []
        staged: list[tuple[str, Path, Path, str, Any]] = []
        paths: list[Path] = []
        try:
            for key, record, fingerprint in items:
                path = self.path_for(key)
                document = {"fingerprint": fingerprint or {}, "record": record}
                text = json.dumps(document, default=_jsonable_fallback)
                tmp = path.with_name(path.name + ".tmp")
                handle = tmp.open("w", encoding="utf-8")
                staged.append((key, path, tmp, text, handle))
                handle.write(text)
                handle.write("\n")
                handle.flush()
            self._flush_handles([entry[4] for entry in staged])
            for key, path, tmp, text, handle in staged:
                handle.close()
                os.replace(tmp, path)
                self._cache_put(key, json.loads(text))
                paths.append(path)
        finally:
            for _, _, _, _, handle in staged:
                if not handle.closed:
                    handle.close()
        _fsync_directory(self.directory)
        return paths

    #: An inline fsync slower than this (seconds) marks the backing device
    #: as slow enough that overlapping the remaining flushes pays off.
    _FSYNC_SLOW = 0.002

    def _flush_handles(self, handles: Sequence[Any]) -> None:
        """fsync every open handle, overlapping them only on slow devices.

        The first handle is always flushed inline and timed; when that probe
        comes back fast the rest are flushed serially too (pool dispatch
        would dominate), and when it is slow the remainder fans out on a
        persistent thread pool so the per-file device waits overlap.
        """
        if not handles:
            return
        start = time.perf_counter()
        os.fsync(handles[0].fileno())
        probe = time.perf_counter() - start
        rest = handles[1:]
        if len(rest) >= 3 and probe >= self._FSYNC_SLOW:
            list(self._pool().map(lambda handle: os.fsync(handle.fileno()), rest))
        else:
            for handle in rest:
                os.fsync(handle.fileno())

    def _pool(self) -> ThreadPoolExecutor:
        with self._fsync_pool_lock:
            if self._fsync_pool is None:
                self._fsync_pool = ThreadPoolExecutor(
                    max_workers=8, thread_name_prefix="store-fsync"
                )
            return self._fsync_pool

    def _write_record(
        self, key: str, record: dict[str, Any], fingerprint: Optional[dict]
    ) -> Path:
        """Write + fsync + replace one record file (no directory fsync)."""
        path = self.path_for(key)
        document = {"fingerprint": fingerprint or {}, "record": record}
        # One serialization serves both the disk write and the read cache:
        # the cached entry is the round-tripped document, so cache hits are
        # byte-for-byte what a disk read would parse.
        text = json.dumps(document, default=_jsonable_fallback)
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._cache_put(key, json.loads(text))
        return path

    def keys(self) -> list[str]:
        """Keys of all stored records."""
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())


def fingerprints_match(stored: dict[str, Any], expected: dict[str, Any]) -> bool:
    """Whether two unit fingerprints denote the same unit.

    The comparison is canonical-JSON equality with the ``stored`` side
    already JSON-round-tripped (tuples became lists, int keys became
    strings) — the exact check :meth:`ResultStore.get` applies to stored
    records.  The remote coordinator uses the same predicate to verify a
    pushed record's fingerprint server-side before it may touch the store.
    """
    return _fingerprints_match(stored, expected)


def _fingerprints_match(stored: dict[str, Any], expected: dict[str, Any]) -> bool:
    """Compare fingerprints canonically (the stored one is JSON-round-tripped)."""
    try:
        canonical_expected = json.dumps(expected, sort_keys=True, default=_jsonable_fallback)
        canonical_stored = json.dumps(stored, sort_keys=True)
    except (TypeError, ValueError):
        return False
    return canonical_stored == canonical_expected


def _jsonable_fallback(value: Any) -> Any:
    from repro.util.serialization import to_jsonable

    return to_jsonable(value)


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (best effort; not all filesystems allow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
