"""On-disk result store: one JSON record per completed work unit.

The store is what makes interrupted sweeps resumable: every completed
:class:`~repro.exec.units.WorkUnit` is written as ``<unit-key>.json`` under
the store directory, where the key is a content hash of the unit's
fingerprint (experiment label, payload, seed spec, chunk bounds, backend).
A re-run with the same parameters recomputes the same keys, finds the
records of completed units and skips their execution entirely — existing
record files are only ever *read*, never rewritten, so their mtimes are
untouched.

Writes are atomic (temp file + ``os.replace``), so a run killed mid-write
never leaves a half-record: the next run simply re-executes that unit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional, Union


class ResultStore:
    """Directory of completed work-unit records, keyed by content hash."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Path of the record file for ``key``."""
        return self.directory / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The stored record for ``key``, or ``None`` if absent or unreadable.

        A corrupt record (e.g. from a kill that predates the atomic-write
        path) is treated as missing, so the unit is simply re-executed.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(document, dict) or "record" not in document:
            return None
        return document["record"]

    def put(self, key: str, record: dict[str, Any], fingerprint: Optional[dict] = None) -> Path:
        """Atomically write ``record`` (plus its fingerprint) under ``key``."""
        path = self.path_for(key)
        document = {"fingerprint": fingerprint or {}, "record": record}
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def keys(self) -> list[str]:
        """Keys of all stored records."""
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())
