"""Persistent JSON-over-HTTP client for the coordinator API.

Before the throughput PR every coordinator request opened (and tore down) a
fresh TCP connection through ``urllib.request``.  For many-tiny-units sweeps
the connection setup dominated the claim/push path, so this module replaces
it with one keep-alive ``http.client.HTTPConnection`` per client:

* **Connection reuse.**  The coordinator handler speaks HTTP/1.1 with
  explicit ``Content-Length`` on every response, so a single connection
  carries the whole claim → push lifecycle.  A request that fails on a
  *reused* connection (the server may close an idle keep-alive at any time)
  is retried exactly once on a fresh connection; a failure on a fresh
  connection propagates as :class:`OSError` for the caller's retry logic —
  the same contract the urllib client had.
* **Optional gzip.**  Request bodies at or above ``gzip_threshold`` bytes
  are sent ``Content-Encoding: gzip``; every request advertises
  ``Accept-Encoding: gzip`` and transparently decodes a gzipped response.
  Batched push bodies (many unit records per request) are where this pays.
* **Thread safety.**  One connection serves one request at a time (an
  internal lock serialises callers).  Threads that must not block each
  other — the worker's heartbeat loop, the claim prefetcher — use
  :meth:`CoordinatorClient.clone` for a connection of their own.

The HTTP status of an error response is *returned*, never raised; only
connection-level failures raise.
"""

from __future__ import annotations

import gzip
import http.client
import json
import socket
import threading
import urllib.parse
from typing import Any, Optional

from repro.exec.protocol import canonical_json

#: Request/response bodies at or above this many bytes are gzip-compressed.
GZIP_THRESHOLD = 4096


class CoordinatorClient:
    """JSON-over-HTTP client for the coordinator API on one keep-alive connection."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        gzip_threshold: int = GZIP_THRESHOLD,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.gzip_threshold = int(gzip_threshold)
        parts = urllib.parse.urlsplit(self.base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"coordinator URL must be http://, got {base_url!r}")
        if not parts.hostname:
            raise ValueError(f"coordinator URL has no host: {base_url!r}")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self._connection: Optional[http.client.HTTPConnection] = None
        self._lock = threading.Lock()

    def clone(self) -> "CoordinatorClient":
        """A client with its own connection (for helper threads)."""
        return CoordinatorClient(
            self.base_url, timeout=self.timeout, gzip_threshold=self.gzip_threshold
        )

    def close(self) -> None:
        """Drop the underlying connection (the next request reconnects)."""
        with self._lock:
            self._drop()

    def request(
        self, path: str, payload: Optional[dict[str, Any]] = None
    ) -> tuple[int, dict[str, Any]]:
        """``GET`` (no payload) or ``POST`` (JSON payload) -> ``(status, body)``.

        HTTP error statuses are returned, not raised; connection-level
        failures (refused, reset, timeout) propagate as :class:`OSError`
        for the caller's retry logic.
        """
        method = "POST" if payload is not None else "GET"
        headers = {"Accept-Encoding": "gzip"}
        data: Optional[bytes] = None
        if payload is not None:
            data = canonical_json(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
            if len(data) >= self.gzip_threshold:
                data = gzip.compress(data, compresslevel=1)
                headers["Content-Encoding"] = "gzip"
        with self._lock:
            for attempt in (0, 1):
                reused = self._connection is not None
                connection = self._ensure_connection()
                try:
                    connection.request(method, self._prefix + path, body=data, headers=headers)
                    response = connection.getresponse()
                    raw = response.read()
                except (http.client.HTTPException, OSError) as exc:
                    self._drop()
                    # A reused keep-alive connection may have been closed by
                    # the server between requests: retry once on a fresh one.
                    if reused and attempt == 0:
                        continue
                    if isinstance(exc, OSError):
                        raise
                    raise OSError(f"HTTP transport failure: {exc}") from exc
                if response.getheader("Content-Encoding", "").lower() == "gzip":
                    raw = gzip.decompress(raw)
                if response.will_close:
                    self._drop()
                return response.status, self._parse(raw)
        raise OSError("unreachable")  # pragma: no cover - loop always returns/raises

    def _ensure_connection(self) -> http.client.HTTPConnection:
        if self._connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            connection.connect()
            # A persistent connection carrying many small JSON requests hits
            # the Nagle/delayed-ACK interaction (~40 ms stalls per exchange)
            # unless small writes are flushed immediately.
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._connection = connection
        return self._connection

    def _drop(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:
                pass
            self._connection = None

    @staticmethod
    def _parse(raw: bytes) -> dict[str, Any]:
        try:
            document = json.loads(raw) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {"error": raw.decode("utf-8", errors="replace")}
        return document if isinstance(document, dict) else {"value": document}
