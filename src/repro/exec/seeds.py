"""Deterministic, serialisable RNG stream derivation for work units.

The executor's determinism contract rests on one fact about
``numpy.random.SeedSequence``: the ``i``-th child spawned from a parent with
entropy ``E`` and spawn key ``K`` is exactly ``SeedSequence(entropy=E,
spawn_key=K + (i,))``.  A :class:`SeedStreamSpec` captures ``(E, K,
pool_size, n_children_spawned)`` — a JSON-able value — and can therefore
re-derive *any slice* of the per-trial streams that
:func:`repro.util.rng.spawn_rngs` would produce, in any process, without
shipping generator objects around.  Trial ``i`` always receives the same
stream no matter how trials are chunked, which worker runs the chunk, or in
which order chunks complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.util.rng import RandomState, SeedLike, as_seed_sequence


@dataclass(frozen=True)
class SeedStreamSpec:
    """Picklable, JSON-able description of a root ``SeedSequence``.

    Attributes
    ----------
    entropy:
        The sequence's entropy (an int, or a tuple of ints).
    spawn_key:
        The sequence's spawn key.
    pool_size:
        The entropy pool size (numpy default: 4).
    children_spawned:
        How many children the root had already spawned when captured; child
        ``i`` of this spec therefore has spawn key
        ``spawn_key + (children_spawned + i,)``.
    """

    entropy: Any
    spawn_key: tuple[int, ...]
    pool_size: int = 4
    children_spawned: int = 0

    @classmethod
    def from_seed(cls, seed: SeedLike) -> "SeedStreamSpec":
        """Capture any :data:`~repro.util.rng.SeedLike` as a stream spec.

        Normalisation goes through :func:`repro.util.rng.as_seed_sequence`
        — the same single point :func:`~repro.util.rng.spawn_rngs` uses —
        so the captured derivation cannot drift from the inline path.
        """
        return cls.from_sequence(as_seed_sequence(seed))

    @classmethod
    def from_sequence(cls, seq: np.random.SeedSequence) -> "SeedStreamSpec":
        """Capture an existing ``SeedSequence`` (including its spawn count)."""
        return cls(
            entropy=_jsonable_entropy(seq.entropy),
            spawn_key=tuple(int(k) for k in seq.spawn_key),
            pool_size=int(seq.pool_size),
            children_spawned=int(seq.n_children_spawned),
        )

    @classmethod
    def reserve(cls, seed: SeedLike, count: int) -> "SeedStreamSpec":
        """Capture a spec for ``count`` trials AND consume the live seed state.

        :func:`repro.util.rng.spawn_rngs` advances a ``SeedSequence``'s (or a
        generator's underlying sequence's) spawn counter when it derives
        trial streams, so a caller reusing one seed object across two
        replication runs gets disjoint streams.  Plain :meth:`from_seed`
        only *reads* the counter — two captures of the same object would
        alias.  This constructor spawns (and discards) ``count`` children
        after capturing, leaving the live object exactly as the inline path
        would, so executor and inline runs stay interchangeable even when
        seed objects are reused.
        """
        seq = as_seed_sequence(seed)
        spec = cls.from_sequence(seq)
        if isinstance(seed, (np.random.Generator, np.random.SeedSequence)):
            # The sequence is (or belongs to) a live object the caller may
            # reuse: consume its spawn state like spawn_rngs would.  (In the
            # no-seed-sequence generator fallback the derived sequence is
            # fresh, so the extra spawn is inert — matching the inline path,
            # where each call draws a fresh fallback too.)
            seq.spawn(count)
        return spec

    def child_sequence(self, index: int) -> np.random.SeedSequence:
        """The ``SeedSequence`` of trial ``index`` (0-based)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        return np.random.SeedSequence(
            entropy=self.entropy,
            spawn_key=self.spawn_key + (self.children_spawned + index,),
            pool_size=self.pool_size,
        )

    def trial_sequences(self, start: int, stop: int) -> list[np.random.SeedSequence]:
        """Seed sequences of trials ``start .. stop-1``."""
        return [self.child_sequence(i) for i in range(start, stop)]

    def trial_rngs(self, start: int, stop: int) -> list[RandomState]:
        """Generators of trials ``start .. stop-1``.

        ``trial_rngs(0, n)`` is bit-for-bit the list
        :func:`repro.util.rng.spawn_rngs` derives for ``n`` replications of
        the captured seed; any sub-slice is the corresponding sub-slice of
        that list.
        """
        return [np.random.default_rng(seq) for seq in self.trial_sequences(start, stop)]

    def as_json(self) -> dict[str, Any]:
        """JSON-able form, used in work-unit fingerprints and store records."""
        return {
            "entropy": _jsonable_entropy(self.entropy),
            "spawn_key": list(self.spawn_key),
            "pool_size": self.pool_size,
            "children_spawned": self.children_spawned,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "SeedStreamSpec":
        """Inverse of :meth:`as_json`."""
        return cls(
            entropy=_entropy_from_json(payload["entropy"]),
            spawn_key=tuple(int(k) for k in payload["spawn_key"]),
            pool_size=int(payload["pool_size"]),
            children_spawned=int(payload["children_spawned"]),
        )


def _jsonable_entropy(entropy: Any) -> Any:
    """Entropy as JSON builtins (int, or list of ints)."""
    if entropy is None:
        return None
    if isinstance(entropy, (int, np.integer)):
        return int(entropy)
    if isinstance(entropy, Sequence):
        return [int(e) for e in entropy]
    raise TypeError(f"unsupported entropy type {type(entropy)!r}")


def _entropy_from_json(entropy: Any) -> Any:
    if isinstance(entropy, list):
        return [int(e) for e in entropy]
    return entropy if entropy is None else int(entropy)
