"""Sharded sweep execution with deterministic resume.

:class:`SweepExecutor` decomposes replicated measurements into
(sweep-point × replication-chunk) :class:`~repro.exec.units.WorkUnit`\\ s,
derives each unit's RNG streams from a serialisable
:class:`~repro.exec.seeds.SeedStreamSpec`, dispatches units either in
process (``jobs=1``, the reference path) or over a
``concurrent.futures.ProcessPoolExecutor`` (``jobs>1``), and merges chunk
records back into the ordinary ``(ReplicationSummary, results)`` shapes.

Determinism contract
--------------------
Trial ``i`` of a sweep point always consumes the stream derived from the
point seed's ``i``-th spawned child — exactly the stream the pre-executor
serial path hands it — so results are bit-for-bit independent of the worker
count, the chunk size and the completion order of units.  Every unit record
passes through the canonical JSON-able form (the same form the
:class:`~repro.exec.store.ResultStore` persists), so a resumed run and an
uninterrupted run assemble identical reports.

Fault tolerance
---------------
Because units are pure functions of their (JSON-able) spec, a unit can be
re-executed anywhere and reproduce the identical record — so the executor
retries failed units (:class:`RetryPolicy`: bounded attempts, exponential
backoff with deterministic per-unit jitter, optional per-unit wall-clock
timeout), survives worker crashes (a broken pool is rebuilt and its
in-flight units requeued; repeated failures degrade to in-process
execution), validates every fresh and stored record against its unit's
trial count, and coordinates with concurrent executors through a
:class:`~repro.exec.leases.LeaseTable` persisted beside the store.  None of
this weakens the bit-for-bit guarantee: a sweep completed through retries,
requeues and lease steals merges exactly the records a fault-free ``jobs=1``
run produces.  A per-run :class:`ExecutionReport` makes the recovery work
observable.

The context-local override installed by :func:`execution_override` is how
``--jobs`` reaches the replication runners inside experiments without
per-experiment plumbing, mirroring
:func:`repro.core.runner.backend_override`.

Remote dispatch (``dispatch="remote"``) embeds an HTTP coordinator
(:mod:`repro.exec.remote`) instead of a process pool: remotable units are
queued for ``repro worker`` processes on any host, everything else runs
inline, and the same merge path assembles the same bytes.  See
``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import shutil
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.statistics import ReplicationAggregate
from repro.exec.faults import FaultPlan, corrupt_record
from repro.exec.leases import DEFAULT_LEASE_TTL, LeaseTable
from repro.exec.seeds import SeedStreamSpec
from repro.exec.store import ResultStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import emit_progress
from repro.exec.units import (
    WorkUnit,
    chunk_bounds,
    describe_payload,
    payload_is_picklable,
    record_matches_unit,
    unit_key,
)
from repro.util.rng import SeedLike, spawn_rngs
from repro.util.serialization import to_jsonable

#: Environment variable selecting the multiprocessing start method
#: ("fork", "spawn", "forkserver"); unset uses the platform default.
START_METHOD_ENV = "REPRO_EXEC_START_METHOD"

#: Consecutive pool rebuilds (with no completed unit in between) after which
#: the executor stops trusting the pool and degrades to in-process execution.
POOL_FAILURE_LIMIT = 3

#: Record-merging styles an executor supports.
AGGREGATES = ("buffered", "streaming")

#: Unit dispatch modes an executor supports.  ``"auto"`` resolves to
#: ``"remote"`` when a listen address is given, else ``"pool"`` when
#: ``jobs > 1``, else ``"inline"`` — the pre-remote behaviour exactly.
DISPATCH_MODES = ("auto", "inline", "pool", "remote")


def check_aggregate(aggregate: str) -> str:
    """Validate an ``aggregate`` choice (``"buffered"`` or ``"streaming"``)."""
    if aggregate not in AGGREGATES:
        raise ValueError(
            f"aggregate must be one of {AGGREGATES}, got {aggregate!r}"
        )
    return aggregate


def check_dispatch(dispatch: str) -> str:
    """Validate a ``dispatch`` choice (one of :data:`DISPATCH_MODES`)."""
    if dispatch not in DISPATCH_MODES:
        raise ValueError(
            f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}"
        )
    return dispatch


# --------------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """How the executor treats a failing work unit.

    Attributes
    ----------
    max_attempts:
        Total executions a unit may consume before its failure propagates
        (``1`` = no retries, the classic behaviour).  Worker-crash requeues
        are *not* attempts — a unit that merely sat in a pool another unit
        crashed keeps its budget — but timeouts and raised exceptions are.
    backoff_base, backoff_factor, backoff_max:
        Delay before retry ``f`` is ``backoff_base * backoff_factor**(f-1)``
        seconds (capped at ``backoff_max``), scaled by a deterministic
        jitter in ``[0.5, 1.5)`` derived from the unit's key — so two
        executors retrying the same store's units spread out identically
        and reproducibly, with no shared randomness.
    unit_timeout:
        Per-unit wall-clock budget in seconds.  Enforced on the pool path
        only (a hung worker is killed and the unit retried); in-process
        units cannot be preempted and run to completion.
    """

    max_attempts: int = 1
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    unit_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValueError(f"unit_timeout must be positive, got {self.unit_timeout}")

    @classmethod
    def from_options(
        cls, retries: int = 0, unit_timeout: Optional[float] = None
    ) -> "RetryPolicy":
        """The policy behind the ``--retries`` / ``--unit-timeout`` flags."""
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        return cls(max_attempts=retries + 1, unit_timeout=unit_timeout)

    def delay(self, failures: int, token: str) -> float:
        """Seconds to wait before the retry after failure ``failures`` (1-based)."""
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, failures - 1),
        )
        digest = hashlib.sha256(f"{token}:{failures}".encode("utf-8")).digest()
        jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**64
        return base * jitter


# --------------------------------------------------------------------------- #
# Execution reporting
# --------------------------------------------------------------------------- #
class _ExecCounters:
    """The executor's own instruments, created in its metrics registry.

    The attribute names match the historical ``_Counters`` tallies; each is
    now a live :class:`repro.obs.Counter`/``Gauge`` in ``registry``, so the
    execution report is a snapshot of the same numbers a ``--metrics-file``
    scrape sees.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.units = registry.counter(
            "repro_exec_units_total", help="Work units handled (store hits included)."
        )
        self.store_hits = registry.counter(
            "repro_exec_store_hits_total", help="Units satisfied from the result store."
        )
        self.executed = registry.counter(
            "repro_exec_executed_total", help="Units executed to completion."
        )
        self.submissions = registry.counter(
            "repro_exec_attempts_total", help="Unit executions started (pool and inline)."
        )
        self.retries = registry.counter(
            "repro_exec_retries_total", help="Failures that consumed an attempt and retried."
        )
        self.timeouts = registry.counter(
            "repro_exec_timeouts_total", help="Units killed for exceeding the unit timeout."
        )
        self.requeues = registry.counter(
            "repro_exec_requeues_total", help="In-flight units requeued after a worker crash."
        )
        self.pool_rebuilds = registry.counter(
            "repro_exec_pool_rebuilds_total", help="Worker pools discarded and rebuilt."
        )
        self.degraded = registry.gauge(
            "repro_exec_degraded", help="1 once the executor fell back to in-process execution."
        )


@dataclass(frozen=True)
class ExecutionReport:
    """Snapshot of everything the fault-tolerance layer did during a run.

    Since the observability PR this is literally a snapshot of the
    executor's :class:`~repro.obs.MetricsRegistry` (``executor.metrics``):
    every field reads the corresponding counter, so the report, a
    ``--metrics-file`` scrape and the JSON progress log all agree.

    ``attempts`` counts unit submissions (pool and in-process); ``retries``
    the failures that consumed an attempt and were re-executed;
    ``requeues`` the innocent in-flight units returned to the queue when a
    worker crash broke the pool; ``quarantined`` the store files renamed
    aside as corrupt; ``lease_steals`` the expired foreign leases taken
    over.  A fault-free run shows ``attempts == executed`` and zeros
    everywhere else — failures are observable, never silent.
    """

    units: int = 0
    store_hits: int = 0
    executed: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    requeues: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    quarantined: int = 0
    fingerprint_mismatches: int = 0
    lease_claims: int = 0
    lease_conflicts: int = 0
    lease_steals: int = 0

    def as_json(self) -> dict[str, Any]:
        """The report as a JSON-able dict."""
        from dataclasses import asdict

        return asdict(self)

    def render(self) -> str:
        """One human-readable line per concern (recovery lines only if used)."""
        lines = [
            f"exec: {self.units} units = {self.store_hits} store hits "
            f"+ {self.executed} executed ({self.attempts} attempts)"
        ]
        if self.retries or self.timeouts or self.requeues or self.pool_rebuilds:
            lines.append(
                f"exec: recovered from {self.retries} retries, "
                f"{self.timeouts} timeouts, {self.requeues} crash requeues, "
                f"{self.pool_rebuilds} pool rebuilds"
                + (" (degraded to in-process)" if self.degraded else "")
            )
        if self.quarantined or self.fingerprint_mismatches:
            lines.append(
                f"exec: store quarantined {self.quarantined} corrupt files, "
                f"re-executed {self.fingerprint_mismatches} fingerprint mismatches"
            )
        if self.lease_conflicts or self.lease_steals:
            lines.append(
                f"exec: leases: {self.lease_claims} claims, "
                f"{self.lease_conflicts} conflicts, {self.lease_steals} steals"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Unit execution (runs inside pool workers; must stay module-level picklable).
# --------------------------------------------------------------------------- #
def execute_unit(unit: WorkUnit) -> dict[str, Any]:
    """Execute one work unit and return its canonical JSON-able record.

    Safe to call in any process: streams are re-derived from the unit's seed
    spec, and any inherited executor override is suspended so nested
    execution can never recurse into a pool.
    """
    with _suspended_override():
        if unit.kind in ("broadcast", "gossip"):
            return _execute_simulation_unit(unit)
        if unit.kind == "process":
            return _execute_process_unit(unit)
        if unit.kind == "map":
            return _execute_map_unit(unit)
        raise ValueError(f"unknown unit kind {unit.kind!r}")


def run_unit_with_faults(
    unit: WorkUnit,
    submission: int,
    plan: Optional[FaultPlan],
    in_worker: bool = False,
) -> dict[str, Any]:
    """Execute ``unit``, first applying any fault ``plan`` schedules for this
    submission.  The chaos-test entry point; with ``plan=None`` it is exactly
    :func:`execute_unit`.
    """
    if plan is None:
        return execute_unit(unit)
    fault = plan.apply(unit_key(unit), submission, in_worker)
    record = execute_unit(unit)
    if fault == "corrupt":
        return corrupt_record(record)
    return record


def _pool_run_unit(
    unit: WorkUnit, submission: int, plan: Optional[FaultPlan]
) -> dict[str, Any]:
    """What the dispatcher submits to pool workers (module-level picklable)."""
    return run_unit_with_faults(unit, submission, plan, in_worker=True)


def _pool_run_chunk(
    units: Sequence[WorkUnit],
    submissions: Sequence[int],
    plan: Optional[FaultPlan],
) -> list[dict[str, Any]]:
    """Chunked pool task: one submitted future carries several units.

    Amortizes the pickle/IPC/future overhead of ``ProcessPoolExecutor``
    across ``pool_chunk`` units.  Each unit's outcome is captured
    independently — ``{"record": ...}`` on success, ``{"error": exc}`` on a
    raised exception — so one failing unit cannot poison its chunk-mates;
    the dispatcher applies the retry policy per unit.  Crash and hang
    faults still take down the whole task, exactly like a crashed worker
    under single-unit dispatch (its chunk-mates are requeued as innocents).
    """
    outcomes: list[dict[str, Any]] = []
    for unit, submission in zip(units, submissions):
        try:
            outcomes.append(
                {"record": run_unit_with_faults(unit, submission, plan, in_worker=True)}
            )
        except Exception as exc:
            outcomes.append({"error": exc})
    return outcomes


def _execute_simulation_unit(unit: WorkUnit) -> dict[str, Any]:
    from repro.core.runner import run_broadcast_replications, run_gossip_replications

    config = unit.payload["config"]
    streams = unit.seed.trial_rngs(unit.start, unit.stop)
    runner = run_broadcast_replications if unit.kind == "broadcast" else run_gossip_replications
    summary, results = runner(
        config,
        unit.n_trials,
        backend=unit.backend,
        connectivity=unit.connectivity,
        rng_streams=streams,
    )
    return {
        "values": [float(v) for v in summary.values],
        "results": [_result_record(res) for res in results],
    }


def _execute_process_unit(unit: WorkUnit) -> dict[str, Any]:
    from repro.dissemination.kernels import make_process, run_process_replications

    spec = unit.payload["process"]
    process = make_process(spec["name"], **dict(spec.get("kwargs") or {}))
    streams = unit.seed.trial_rngs(unit.start, unit.stop)
    summary, results = run_process_replications(
        process,
        unit.n_trials,
        backend=unit.backend,
        connectivity=unit.connectivity,
        rng_streams=streams,
    )
    return {
        "values": [float(v) for v in summary.values],
        "results": [_result_record(res) for res in results],
    }


def _execute_map_unit(unit: WorkUnit) -> dict[str, Any]:
    fn: Callable[..., Any] = unit.payload["fn"]
    kwargs = dict(unit.payload.get("kwargs") or {})
    trials = []
    for rng in unit.seed.trial_rngs(unit.start, unit.stop):
        trials.append(to_jsonable(fn(rng, **kwargs)))
    return {"trials": trials}


#: Result-dataclass integer-array fields carried through records; for
#: simulation kinds ``config`` is reattached from the unit payload at merge
#: time instead of being serialised once per trial.
_INT_ARRAY_FIELDS = (
    "informed_curve",
    "knowledge_curve",
    "frontier_history",
    "active_curve",
    "survival_curve",
    "coverage_curve",
)


def _result_record(result: Any) -> dict[str, Any]:
    """A simulation result dataclass as a JSON-able record (minus config)."""
    import dataclasses

    record = {}
    for f in dataclasses.fields(result):
        if f.name == "config":
            continue
        record[f.name] = to_jsonable(getattr(result, f.name))
    return record


def _result_from_record(kind: str, record: Mapping[str, Any], config: Any) -> Any:
    from repro.core.gossip import GossipResult
    from repro.core.simulation import BroadcastResult

    fields = dict(record)
    for name in _INT_ARRAY_FIELDS:
        if fields.get(name) is not None:
            fields[name] = np.asarray(fields[name], dtype=np.int64)
    cls = BroadcastResult if kind == "broadcast" else GossipResult
    return cls(config=config, **fields)


def _process_result_from_record(result_class: type, record: Mapping[str, Any]) -> Any:
    fields = dict(record)
    for name in _INT_ARRAY_FIELDS:
        if fields.get(name) is not None:
            fields[name] = np.asarray(fields[name], dtype=np.int64)
    return result_class(**fields)


def _merge_process_records(
    process: Any, records: Sequence[Mapping[str, Any]]
) -> tuple[Any, list[Any]]:
    """Process-kind chunk records -> ``(ReplicationSummary, results)``."""
    from repro.core.runner import summarise_values

    values: list[float] = []
    results: list[Any] = []
    for record in records:
        values.extend(float(v) for v in record["values"])
        results.extend(
            _process_result_from_record(process.result_class, res)
            for res in record["results"]
        )
    return summarise_values(values), results


def _merge_simulation_records(
    kind: str, config: Any, records: Sequence[Mapping[str, Any]]
) -> tuple[Any, list[Any]]:
    """Chunk records (in trial order) -> ``(ReplicationSummary, results)``."""
    from repro.core.runner import summarise_values

    values: list[float] = []
    results: list[Any] = []
    for record in records:
        values.extend(float(v) for v in record["values"])
        results.extend(_result_from_record(kind, res, config) for res in record["results"])
    return summarise_values(values), results


class _StreamingFold:
    """Folds each unit's record into a per-unit aggregate as it completes.

    Per-unit partials are merged *in unit order* when a span is read back —
    never in completion order — so the streaming summary is deterministic
    for any worker count, chunking or completion interleaving (and, because
    the sketch merge is exact and Chan's moment merge is order-fixed here,
    identical across runs).  Memory is one small aggregate per unit instead
    of every per-trial value and result object.
    """

    def __init__(self) -> None:
        self._partials: dict[int, ReplicationAggregate] = {}

    def __call__(self, index: int, record: Mapping[str, Any]) -> None:
        aggregate = ReplicationAggregate()
        for value in record["values"]:
            aggregate.add(float(value))
        self._partials[index] = aggregate

    def merged(self, start: int, stop: int) -> ReplicationAggregate:
        """The units ``[start, stop)`` merged in unit order."""
        total = ReplicationAggregate()
        for index in range(start, stop):
            partial = self._partials.get(index)
            if partial is not None:
                total.merge(partial)
        return total


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #
class SweepExecutor:
    """Sharded, resumable executor for replicated sweep measurements.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes every unit in process, in order —
        the reference path the parallel path must match bit for bit.
    chunk_size:
        Trials per work unit (default:
        :func:`~repro.exec.units.default_chunk_size`, a function of the
        replication count only, never of ``jobs``, so unit keys are stable
        across worker counts).
    store:
        Optional :class:`~repro.exec.store.ResultStore` (or directory path).
        Completed units are persisted there and skipped on re-runs.  A store
        also activates the lease table (persisted in ``<store>/leases``), so
        concurrent or restarted executors sharing the store never double-run
        a unit and expired claims are requeued.
    start_method:
        Multiprocessing start method; default: ``$REPRO_EXEC_START_METHOD``
        or the platform default.
    retry:
        The :class:`RetryPolicy` applied to every unit (default: one
        attempt, no timeout — failures propagate like they always did).
    fault_plan:
        Optional :class:`~repro.exec.faults.FaultPlan` injected into every
        execution, for chaos testing.  Never set this on a production run.
    lease_ttl:
        Seconds a claimed unit may go without a heartbeat before another
        executor may steal it (only meaningful with a store).
    aggregate:
        ``"buffered"`` (default) merges unit records into the classic
        ``(ReplicationSummary, results)`` shapes, holding every per-trial
        value and result in memory.  ``"streaming"`` folds each record into
        a mergeable :class:`~repro.analysis.statistics.ReplicationAggregate`
        the moment the unit completes and drops the record, so a sweep point
        costs O(1) memory; the high-level entry points then return a
        :class:`~repro.core.runner.StreamingReplicationSummary` and an empty
        results list.  Per-trial records still reach the result store, and
        the default path is bit-for-bit unchanged.
    dispatch:
        ``"auto"`` (default) resolves to ``"remote"`` when ``listen`` is
        given, else ``"pool"`` when ``jobs > 1``, else ``"inline"`` — the
        historical behaviour.  ``"remote"`` embeds an HTTP coordinator and
        queues every wire-safe unit for external ``repro worker`` loops;
        units that cannot cross the wire (map payloads, non-JSON-able
        configs) run inline.  Any topology of workers produces bit-for-bit
        the ``jobs=1`` result.
    listen:
        ``"host:port"`` bind address of the embedded coordinator (remote
        dispatch only; port 0 picks a free port — read it back from
        ``executor.coordinator.address``).  Defaults to loopback; the
        coordinator is unauthenticated, so never bind a public interface.
    pool_chunk:
        Units per submitted pool task (default ``1``, the classic
        one-future-per-unit dispatch).  Larger values amortize the
        pickle/IPC/future overhead across many tiny units; retry, timeout
        and lease semantics still apply per unit inside the chunk, and
        results stay bit-for-bit identical to ``--jobs 1``.  Chunks are
        assembled per dispatch round, so ``pool_chunk`` never changes unit
        keys (unlike ``chunk_size``).
    """

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        store: Optional[ResultStore | str] = None,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        aggregate: str = "buffered",
        dispatch: str = "auto",
        listen: Optional[str] = None,
        pool_chunk: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if pool_chunk < 1:
            raise ValueError(f"pool_chunk must be >= 1, got {pool_chunk}")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self.pool_chunk = int(pool_chunk)
        self.store = ResultStore(store) if isinstance(store, (str, os.PathLike)) else store
        self.start_method = start_method or os.environ.get(START_METHOD_ENV) or None
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.lease_ttl = float(lease_ttl)
        self.aggregate = check_aggregate(aggregate)
        check_dispatch(dispatch)
        if dispatch == "auto":
            dispatch = "remote" if listen is not None else ("pool" if jobs > 1 else "inline")
        self.dispatch = dispatch
        #: A remote executor needs a store (the coordinator's source of
        #: truth for pushed records); without one a private temp directory
        #: serves the run and is removed on close.
        self._own_store_dir: Optional[str] = None
        if self.dispatch == "remote" and self.store is None:
            self._own_store_dir = tempfile.mkdtemp(prefix="repro-remote-store-")
            self.store = ResultStore(self._own_store_dir)
        self.leases: Optional[LeaseTable] = None
        if self.store is not None:
            self.leases = LeaseTable(self.store.directory / "leases", ttl=self.lease_ttl)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Per-executor registry: the executor's own counters plus the
        #: adopted store and lease instruments.  ``--metrics-file`` renders
        #: this merged with the process-global registry.
        self.metrics = MetricsRegistry()
        self._counters = _ExecCounters(self.metrics)
        self._unit_seconds = self.metrics.histogram(
            "repro_exec_unit_seconds", help="Wall-clock seconds per executed work unit."
        )
        self._dispatch_seconds = self.metrics.histogram(
            "repro_exec_dispatch_seconds",
            help="Wall-clock seconds spent submitting work to the dispatch layer.",
            buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.25, 1.0),
        )
        if self.store is not None:
            for counter in self.store.stats.counters():
                self.metrics.register(counter)
        if self.leases is not None:
            for counter in self.leases.stats.counters():
                self.metrics.register(counter)
        self._degraded = False
        #: The embedded HTTP coordinator (remote dispatch only), started
        #: eagerly so ``/metrics`` answers before any unit is submitted.
        self.coordinator = None
        if self.dispatch == "remote":
            from repro.exec.remote import Coordinator
            from repro.obs.metrics import global_registry

            self.coordinator = Coordinator(
                self.store,
                lease_ttl=self.lease_ttl,
                listen=listen or "127.0.0.1:0",
                extra_registries=(self.metrics, global_registry()),
            )

    @classmethod
    def from_options(
        cls,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        store: Optional[ResultStore | str] = None,
        retries: int = 0,
        unit_timeout: Optional[float] = None,
        aggregate: str = "buffered",
        dispatch: str = "auto",
        listen: Optional[str] = None,
        lease_ttl: Optional[float] = None,
        pool_chunk: Optional[int] = None,
    ) -> Optional["SweepExecutor"]:
        """An executor when any option departs from the defaults, else ``None``.

        The single activation rule behind ``--jobs`` / ``--resume`` /
        ``--chunk-size`` / ``--retries`` / ``--unit-timeout`` /
        ``--aggregate`` / ``--dispatch`` / ``--listen`` / ``--pool-chunk``:
        all-default options mean "keep the classic in-process path"
        (``None`` composes with :func:`execution_override` as a true
        no-op).  ``aggregate="streaming"`` alone activates an in-process
        executor, since streaming needs the unit machinery; a non-``"auto"``
        dispatch or a listen address activates one because dispatch needs it.
        """
        check_aggregate(aggregate)
        check_dispatch(dispatch)
        if (
            jobs == 1
            and chunk_size is None
            and store is None
            and retries == 0
            and unit_timeout is None
            and aggregate == "buffered"
            and dispatch == "auto"
            and listen is None
            and pool_chunk in (None, 1)
        ):
            return None
        return cls(
            jobs=jobs,
            chunk_size=chunk_size,
            store=store,
            retry=RetryPolicy.from_options(retries=retries, unit_timeout=unit_timeout),
            aggregate=aggregate,
            dispatch=dispatch,
            listen=listen,
            lease_ttl=lease_ttl if lease_ttl is not None else DEFAULT_LEASE_TTL,
            pool_chunk=pool_chunk if pool_chunk is not None else 1,
        )

    # -- lifecycle ---------------------------------------------------------- #
    def close(self) -> None:
        """Shut down the pool, coordinator and held leases (idempotent).

        A remote executor's coordinator first tells polling workers the
        sweep is done, then stops serving; a temp store created for
        store-less remote dispatch is removed with it.
        """
        if self.coordinator is not None:
            self.coordinator.close()
        if self.leases is not None:
            for key in self.leases.keys():
                self.leases.release(key)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._own_store_dir is not None:
            shutil.rmtree(self._own_store_dir, ignore_errors=True)
            self._own_store_dir = None

    def execution_report(self) -> ExecutionReport:
        """Everything the fault-tolerance layer did so far, as one snapshot.

        Reads the live instruments in :attr:`metrics`, so the report always
        agrees with a metrics scrape taken at the same moment.
        """
        c = self._counters
        store_stats = self.store.stats if self.store is not None else None
        lease_stats = self.leases.stats if self.leases is not None else None
        return ExecutionReport(
            units=int(c.units.value),
            store_hits=int(c.store_hits.value),
            executed=int(c.executed.value),
            attempts=int(c.submissions.value),
            retries=int(c.retries.value),
            timeouts=int(c.timeouts.value),
            requeues=int(c.requeues.value),
            pool_rebuilds=int(c.pool_rebuilds.value),
            degraded=bool(c.degraded.value),
            quarantined=store_stats.quarantined if store_stats else 0,
            fingerprint_mismatches=(
                store_stats.fingerprint_mismatches if store_stats else 0
            ),
            lease_claims=lease_stats.claims if lease_stats else 0,
            lease_conflicts=lease_stats.conflicts if lease_stats else 0,
            lease_steals=lease_stats.steals if lease_stats else 0,
        )

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _pool_instance(self) -> ProcessPoolExecutor:
        if self._pool is None:
            mp_context = None
            if self.start_method is not None:
                import multiprocessing

                mp_context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=mp_context)
        return self._pool

    # -- decomposition ------------------------------------------------------ #
    def decompose(
        self,
        label: str,
        kind: str,
        payload: Mapping[str, Any],
        n_replications: int,
        seed: SeedLike,
        backend: Optional[str] = None,
        connectivity: Optional[str] = None,
    ) -> list[WorkUnit]:
        """Split one sweep point into replication-chunk work units.

        Consumes the live seed state exactly like the inline path's
        ``spawn_rngs`` call would (:meth:`SeedStreamSpec.reserve`), so
        reusing one seed object across runs yields disjoint streams on
        either path.
        """
        spec = SeedStreamSpec.reserve(seed, n_replications)
        return [
            WorkUnit(
                label=label,
                kind=kind,
                payload=payload,
                n_replications=n_replications,
                start=start,
                stop=stop,
                seed=spec,
                backend=backend,
                connectivity=connectivity,
            )
            for start, stop in chunk_bounds(n_replications, self.chunk_size)
        ]

    # -- execution ---------------------------------------------------------- #
    def run_units(
        self,
        units: Sequence[WorkUnit],
        consume: Optional[Callable[[int, dict[str, Any]], None]] = None,
    ) -> list[dict[str, Any]]:
        """Execute (or load) every unit; records are returned in unit order.

        Units whose key is already in the store are loaded from disk (after
        fingerprint and shape validation) and not re-executed.  Fresh
        results are written to the store as they complete, so an interrupted
        call leaves a valid partial store.  Failures are handled per the
        executor's :class:`RetryPolicy`; worker crashes rebuild the pool and
        requeue its in-flight units; units leased to a concurrent executor
        are awaited (or stolen once the lease expires).

        ``consume``, when given, receives each unit's record exactly once as
        ``consume(index, record)`` the moment it becomes available (in
        completion order, NOT unit order) and the record is dropped instead
        of retained — the streaming-aggregation memory bound — and the call
        returns an empty list.  A consumer needing unit order must bucket by
        ``index`` itself (see ``_StreamingFold``).
        """
        records: list[Optional[dict[str, Any]]] = [None] * len(units)

        def deliver(index: int, record: dict[str, Any]) -> None:
            if consume is not None:
                consume(index, record)
            else:
                records[index] = record
        # Picklability gates both pool dispatch and the store: an unpicklable
        # payload (e.g. a closure) has no faithful content fingerprint — its
        # captured state is invisible to the unit key — so it must neither
        # read from nor write to the store.  Checked once per distinct
        # payload object, not once per unit.
        picklable_by_payload: dict[int, bool] = {}
        storable: list[bool] = []
        for unit in units:
            payload_id = id(unit.payload)
            if payload_id not in picklable_by_payload:
                picklable_by_payload[payload_id] = payload_is_picklable(unit.payload)
            storable.append(picklable_by_payload[payload_id])

        # Keys (and the payload descriptions they hash) exist for the store
        # only; units sharing one payload object share one description.
        keys: list[Optional[str]] = [None] * len(units)
        fingerprints: list[Optional[dict[str, Any]]] = [None] * len(units)
        if self.store is not None:
            described_by_payload: dict[int, dict[str, Any]] = {}
            for index, unit in enumerate(units):
                if not storable[index]:
                    continue
                payload_id = id(unit.payload)
                if payload_id not in described_by_payload:
                    described_by_payload[payload_id] = describe_payload(unit.payload)
                fingerprints[index] = unit.fingerprint(described_by_payload[payload_id])
                keys[index] = unit_key(unit, described_by_payload[payload_id])

        self._counters.units.inc(len(units))
        pending: list[int] = []
        for index, key in enumerate(keys):
            stored = self._load_stored(units[index], key, fingerprints[index])
            if stored is not None:
                self._counters.store_hits.inc()
                emit_progress("unit_store_hit", label=units[index].label, key=key)
                deliver(index, stored)
            else:
                pending.append(index)

        # Remote dispatch: every storable unit that survives the wire goes to
        # the coordinator's queue for workers to drain; anything else (map
        # payloads, non-JSON-able configs) falls back to inline execution
        # here, exactly as the jobs=1 reference path would run it.
        remote_keys: list[str] = []
        if self.coordinator is not None and pending:
            from repro.exec.protocol import ProtocolError

            def remote_callback(index: int) -> Callable[[dict[str, Any]], None]:
                def on_record(record: dict[str, Any]) -> None:
                    self._counters.executed.inc()
                    deliver(index, record)

                return on_record

            local: list[int] = []
            for index in pending:
                key = keys[index]
                if key is None or not storable[index]:
                    local.append(index)
                    continue
                began = time.monotonic()
                try:
                    # submit() encodes the unit before touching any state, so
                    # a non-remotable unit (map payload, non-JSON-able config)
                    # rejects cleanly here — one encode per unit instead of a
                    # unit_is_remotable probe followed by a second encode.
                    self.coordinator.submit(
                        units[index],
                        key,
                        fingerprints[index],
                        on_record=remote_callback(index),
                    )
                except ProtocolError:
                    local.append(index)
                    continue
                self._dispatch_seconds.observe(time.monotonic() - began)
                self._counters.submissions.inc()
                remote_keys.append(key)
            pending = local

        parallel: list[int] = []
        if (
            self.dispatch == "pool"
            and self.jobs > 1
            and len(pending) > 1
            and not self._degraded
        ):
            parallel = [i for i in pending if storable[i]]
        parallel_set = set(parallel)
        inline = [i for i in pending if i not in parallel_set]

        if parallel:
            self._run_pooled(units, parallel, keys, fingerprints, deliver)
        for index in inline:
            deliver(
                index,
                self._run_inline_unit(units[index], keys[index], fingerprints[index]),
            )
        if remote_keys:
            assert self.coordinator is not None
            self.coordinator.wait(remote_keys)
        if consume is not None:
            return []
        return [record for record in records if record is not None]

    # -- the pooled dispatcher (retries, timeouts, crash recovery) ---------- #
    def _run_pooled(
        self,
        units: Sequence[WorkUnit],
        indices: Sequence[int],
        keys: Sequence[Optional[str]],
        fingerprints: Sequence[Optional[dict[str, Any]]],
        deliver: Callable[[int, dict[str, Any]], None],
    ) -> None:
        policy = self.retry
        crash_limit = max(3, policy.max_attempts)
        chunk_cap = max(1, self.pool_chunk)
        tokens = {
            i: keys[i] or f"{units[i].label}[{units[i].start}:{units[i].stop}]"
            for i in indices
        }
        queue: deque[int] = deque(indices)
        submissions = {i: 0 for i in indices}  # total executions started
        failures = {i: 0 for i in indices}  # attempt-consuming failures
        crash_requeues = {i: 0 for i in indices}
        delayed: list[tuple[float, int]] = []  # backoff heap (ready_time, index)
        blocked: dict[int, float] = {}  # lease-blocked -> next poll time
        in_flight: dict[Future, tuple[int, ...]] = {}
        deadlines: dict[Future, Optional[float]] = {}
        started: dict[Future, float] = {}
        timed_out: set[int] = set()
        consecutive_rebuilds = 0
        completed_since_rebuild = False

        def fail(index: int, exc: BaseException) -> None:
            failures[index] += 1
            if failures[index] >= policy.max_attempts:
                raise exc
            self._counters.retries.inc()
            emit_progress("unit_retry", unit=tokens[index], failures=failures[index])
            ready = time.monotonic() + policy.delay(failures[index], tokens[index])
            heapq.heappush(delayed, (ready, index))

        def settle(future: Future, chunk: tuple[int, ...]) -> bool:
            """Process one finished future; returns True if the pool broke."""
            nonlocal completed_since_rebuild
            try:
                result = future.result()
            except BrokenProcessPool:
                for index in chunk:
                    if index in timed_out:
                        # Killed on purpose: the chunk's deadline passed.
                        timed_out.discard(index)
                        self._counters.timeouts.inc()
                        emit_progress("unit_timeout", unit=tokens[index])
                        fail(
                            index,
                            TimeoutError(
                                f"unit {tokens[index]} exceeded "
                                f"{policy.unit_timeout}s wall-clock timeout"
                            ),
                        )
                    else:
                        # Innocent bystander of a crashed worker: requeue
                        # without consuming an attempt, bounded so a unit that
                        # keeps losing its pool cannot spin forever.
                        crash_requeues[index] += 1
                        self._counters.requeues.inc()
                        emit_progress("unit_requeued", unit=tokens[index])
                        if crash_requeues[index] > crash_limit:
                            raise RuntimeError(
                                f"unit {tokens[index]} lost to {crash_requeues[index]} "
                                "worker-pool failures"
                            )
                        queue.append(index)
                return True
            except Exception as exc:
                for index in chunk:
                    fail(index, exc)
                return False
            # A single-unit future returns the bare record; a chunk future
            # returns one outcome dict per unit, in chunk order.
            outcomes = result if isinstance(result, list) else [{"record": result}]
            began = started.get(future)
            per_unit = (
                (time.monotonic() - began) / max(1, len(chunk))
                if began is not None
                else None
            )
            completions: list[tuple[int, dict[str, Any]]] = []
            failed: list[tuple[int, BaseException]] = []
            for index, outcome in zip(chunk, outcomes):
                timed_out.discard(index)
                error = outcome.get("error")
                if error is not None:
                    failed.append((index, error))
                    continue
                record = outcome["record"]
                if not record_matches_unit(units[index], record):
                    failed.append(
                        (
                            index,
                            RuntimeError(
                                f"unit {tokens[index]} returned a corrupt record "
                                f"(expected {units[index].n_trials} trials)"
                            ),
                        )
                    )
                    continue
                completions.append((index, record))
            # Group-commit the chunk's completions first, so an
            # exhausted-attempts raise below cannot lose finished siblings.
            if completions:
                self._complete_many(
                    [(keys[i], fingerprints[i], record) for i, record in completions]
                )
                for index, record in completions:
                    if per_unit is not None:
                        self._unit_seconds.observe(per_unit)
                    deliver(index, record)
                    emit_progress("unit_completed", unit=tokens[index])
                completed_since_rebuild = True
            for index, error in failed:
                fail(index, error)
            return False

        def rebuild_pool() -> None:
            """Drain in-flight futures, discard the pool, track degradation."""
            nonlocal consecutive_rebuilds, completed_since_rebuild
            # Once broken, every remaining future resolves (with
            # BrokenProcessPool or its real result).
            for future, chunk in list(in_flight.items()):
                settle(future, chunk)
            in_flight.clear()
            deadlines.clear()
            started.clear()
            timed_out.clear()
            self._discard_pool()
            self._counters.pool_rebuilds.inc()
            emit_progress("pool_rebuild", consecutive=consecutive_rebuilds + 1)
            if completed_since_rebuild:
                consecutive_rebuilds = 1
            else:
                consecutive_rebuilds += 1
            completed_since_rebuild = False
            if consecutive_rebuilds > POOL_FAILURE_LIMIT:
                self._degraded = True
                self._counters.degraded.set(1)
                emit_progress("degraded")

        while queue or in_flight or delayed or blocked:
            if self._degraded:
                # The pool has failed repeatedly without progress: run
                # everything that is not already in flight in process.
                leftovers = sorted(
                    set(queue) | {i for _, i in delayed} | set(blocked)
                )
                queue.clear()
                delayed.clear()
                blocked.clear()
                for index in leftovers:
                    deliver(
                        index,
                        self._run_inline_unit(
                            units[index],
                            keys[index],
                            fingerprints[index],
                            start_submission=submissions[index],
                        ),
                    )
                continue

            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index = heapq.heappop(delayed)
                queue.append(index)
            for index in [i for i, t in blocked.items() if t <= now]:
                del blocked[index]
                stored = self._load_stored(units[index], keys[index], fingerprints[index])
                if stored is not None:
                    # The lease holder finished it for us.
                    self._counters.store_hits.inc()
                    emit_progress(
                        "unit_store_hit", label=units[index].label, key=keys[index]
                    )
                    deliver(index, stored)
                else:
                    queue.append(index)

            submit_broken = False
            while queue and len(in_flight) < self.jobs:
                # Assemble up to pool_chunk claimable units into one task.
                batch: list[int] = []
                while queue and len(batch) < chunk_cap:
                    index = queue.popleft()
                    key = keys[index]
                    if (
                        key is not None
                        and self.leases is not None
                        and not self.leases.claim(key)
                    ):
                        blocked[index] = time.monotonic() + self._lease_poll_interval()
                        continue
                    batch.append(index)
                if not batch:
                    break  # everything claimable went to `blocked`
                try:
                    submitted = time.monotonic()
                    if chunk_cap == 1:
                        index = batch[0]
                        future = self._pool_instance().submit(
                            _pool_run_unit, units[index], submissions[index], self.fault_plan
                        )
                    else:
                        future = self._pool_instance().submit(
                            _pool_run_chunk,
                            [units[i] for i in batch],
                            [submissions[i] for i in batch],
                            self.fault_plan,
                        )
                    self._dispatch_seconds.observe(time.monotonic() - submitted)
                except BrokenProcessPool:
                    # A worker died between settles and the pool noticed at
                    # submit time.  The units never started (keep their
                    # leases, count no submissions); recover like any break.
                    for index in reversed(batch):
                        queue.appendleft(index)
                    submit_broken = True
                    break
                for index in batch:
                    submissions[index] += 1
                    self._counters.submissions.inc()
                in_flight[future] = tuple(batch)
                started[future] = time.monotonic()
                deadlines[future] = (
                    time.monotonic() + policy.unit_timeout * len(batch)
                    if policy.unit_timeout is not None
                    else None
                )

            if submit_broken:
                rebuild_pool()
                continue

            if not in_flight:
                wake = [t for t, _ in delayed[:1]] + list(blocked.values())
                if wake:
                    time.sleep(max(0.01, min(wake) - time.monotonic()))
                continue

            done, _ = wait(
                set(in_flight),
                timeout=self._wait_timeout(deadlines, delayed, blocked),
                return_when=FIRST_COMPLETED,
            )
            if self.leases is not None:
                self.leases.heartbeat(
                    [
                        keys[i]
                        for chunk in in_flight.values()
                        for i in chunk
                        if keys[i] is not None
                    ]
                )

            now = time.monotonic()
            expired = [
                f
                for f, d in deadlines.items()
                if f not in done and d is not None and d <= now
            ]
            if expired:
                # A running pool task cannot be cancelled: kill the workers
                # (breaking the pool), let every in-flight future resolve,
                # and sort timed-out units from innocent requeues below.
                for future in expired:
                    timed_out.update(in_flight[future])
                self._kill_pool_workers()

            pool_broken = bool(expired)
            for future in done:
                chunk = in_flight.pop(future)
                deadlines.pop(future, None)
                pool_broken |= settle(future, chunk)
                started.pop(future, None)
            if pool_broken:
                rebuild_pool()

    # -- the in-process path (jobs=1, unpicklable payloads, degraded mode) -- #
    def _run_inline_unit(
        self,
        unit: WorkUnit,
        key: Optional[str],
        fingerprint: Optional[dict[str, Any]],
        start_submission: int = 0,
    ) -> dict[str, Any]:
        token = key or f"{unit.label}[{unit.start}:{unit.stop}]"
        if key is not None and self.leases is not None:
            stored = self._await_lease(unit, key, fingerprint)
            if stored is not None:
                self._counters.store_hits.inc()
                emit_progress("unit_store_hit", label=unit.label, key=key)
                return stored
        policy = self.retry
        submission = start_submission
        failures = 0
        while True:
            self._counters.submissions.inc()
            submission += 1
            began = time.monotonic()
            try:
                record = run_unit_with_faults(
                    unit, submission - 1, self.fault_plan, in_worker=False
                )
                if not record_matches_unit(unit, record):
                    raise RuntimeError(
                        f"unit {token} returned a corrupt record "
                        f"(expected {unit.n_trials} trials)"
                    )
            except Exception:
                failures += 1
                if failures >= policy.max_attempts:
                    raise
                self._counters.retries.inc()
                emit_progress("unit_retry", unit=token, failures=failures)
                time.sleep(policy.delay(failures, token))
                continue
            self._unit_seconds.observe(time.monotonic() - began)
            emit_progress("unit_completed", unit=token)
            return self._complete(key, fingerprint, record)

    def _await_lease(
        self,
        unit: WorkUnit,
        key: str,
        fingerprint: Optional[dict[str, Any]],
    ) -> Optional[dict[str, Any]]:
        """Claim ``key``, waiting out (or outliving) a concurrent owner.

        Returns the unit's record if the other executor completed it while
        we waited, else ``None`` with the lease now held by us.
        """
        assert self.leases is not None
        interval = self._lease_poll_interval()
        while not self.leases.claim(key):
            time.sleep(interval)
            stored = self._load_stored(unit, key, fingerprint)
            if stored is not None:
                return stored
        # Claimed (possibly stolen after expiry): the previous owner may
        # still have finished the unit between our store check and now.
        stored = self._load_stored(unit, key, fingerprint)
        if stored is not None:
            self.leases.release(key)
            return stored
        return None

    # -- shared completion / recovery helpers ------------------------------- #
    def _run_streaming(self, units: Sequence[WorkUnit]) -> tuple[Any, list[Any]]:
        """Run ``units`` folding each record into a streaming aggregate.

        Records are consumed (never buffered) and merged in unit order, so
        the summary matches any worker count or completion interleaving.
        Per-trial result objects are not materialised — streaming callers
        get a :class:`~repro.core.runner.StreamingReplicationSummary` and an
        empty results list (the per-trial records are still on disk when a
        store is configured).
        """
        from repro.core.runner import StreamingReplicationSummary

        fold = _StreamingFold()
        self.run_units(units, consume=fold)
        return StreamingReplicationSummary(fold.merged(0, len(units))), []

    def _load_stored(
        self,
        unit: WorkUnit,
        key: Optional[str],
        fingerprint: Optional[dict[str, Any]],
    ) -> Optional[dict[str, Any]]:
        """A validated stored record for ``unit``, or ``None``.

        Beyond the store's own parse/fingerprint checks, the record must
        match the unit's trial count — a truncated record written by a
        pre-hardening version (or a corrupted store) is quarantined rather
        than merged.
        """
        if self.store is None or key is None:
            return None
        record = self.store.get(key, fingerprint=fingerprint)
        if record is None:
            return None
        if not record_matches_unit(unit, record):
            self.store.quarantine(key)
            self.store.stats.hits -= 1
            self.store.stats.misses += 1
            return None
        return record

    def _complete(
        self,
        key: Optional[str],
        fingerprint: Optional[dict[str, Any]],
        record: dict[str, Any],
    ) -> dict[str, Any]:
        if self.store is not None and key is not None:
            self.store.put(key, record, fingerprint=fingerprint)
            if self.leases is not None:
                self.leases.release(key)
        self._counters.executed.inc()
        return record

    def _complete_many(
        self, items: Sequence[tuple[Optional[str], Optional[dict[str, Any]], dict[str, Any]]]
    ) -> None:
        """Persist a chunk's records through one store group commit.

        Same durability point as per-unit :meth:`_complete` calls (every
        record file is individually fsynced) at one directory fsync per
        chunk; leases release only after their records are durable.
        """
        if self.store is not None:
            stored = [
                (key, record, fingerprint)
                for key, fingerprint, record in items
                if key is not None
            ]
            if stored:
                self.store.put_many(stored)
                if self.leases is not None:
                    for key, _record, _fingerprint in stored:
                        self.leases.release(key)
        self._counters.executed.inc(len(items))

    def _wait_timeout(
        self,
        deadlines: Mapping[Future, Optional[float]],
        delayed: Sequence[tuple[float, int]],
        blocked: Mapping[int, float],
    ) -> Optional[float]:
        """How long the dispatcher may block before its next housekeeping."""
        candidates = [d for d in deadlines.values() if d is not None]
        if delayed:
            candidates.append(delayed[0][0])
        candidates.extend(blocked.values())
        if self.leases is not None:
            candidates.append(time.monotonic() + self._heartbeat_interval())
        if not candidates:
            return None
        return max(0.0, min(candidates) - time.monotonic())

    def _lease_poll_interval(self) -> float:
        return min(max(self.lease_ttl / 4.0, 0.05), 1.0)

    def _heartbeat_interval(self) -> float:
        return min(max(self.lease_ttl / 4.0, 0.05), 15.0)

    def _kill_pool_workers(self) -> None:
        """SIGKILL the pool's worker processes (deliberately breaking it)."""
        if self._pool is None:
            return
        for process in list(getattr(self._pool, "_processes", {}).values()):
            try:
                process.kill()
            except (OSError, AttributeError):
                pass

    def _discard_pool(self) -> None:
        """Throw away a (broken) pool; the next dispatch builds a fresh one."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- high-level entry points -------------------------------------------- #
    def run_replications(
        self,
        kind: str,
        config: Any,
        n_replications: int,
        seed: SeedLike,
        backend: str,
        connectivity: Optional[str] = None,
        label: Optional[str] = None,
    ) -> tuple[Any, list[Any]]:
        """Sharded equivalent of ``run_broadcast/gossip_replications``.

        ``backend`` (and ``connectivity``, when given) must already be
        resolved to concrete choices (resolution happens in the calling
        process so worker processes never depend on ambient override state).
        """
        units = self.decompose(
            label=label or _config_label(kind, config),
            kind=kind,
            payload={"config": config},
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            connectivity=connectivity,
        )
        if self.aggregate == "streaming":
            return self._run_streaming(units)
        return _merge_simulation_records(kind, config, self.run_units(units))

    def run_process(
        self,
        process: Any,
        n_replications: int,
        seed: SeedLike,
        backend: str,
        connectivity: Optional[str] = None,
        label: Optional[str] = None,
    ) -> tuple[Any, list[Any]]:
        """Sharded equivalent of
        :func:`repro.dissemination.kernels.run_process_replications`.

        The unit payload is the kernel's JSON-able ``spec`` — workers
        rebuild the kernel by name, so process units are picklable *and*
        content-addressable in a resume store.  ``backend`` and
        ``connectivity`` must already be resolved, like
        :meth:`run_replications`.
        """
        units = self.decompose(
            label=label or f"process[{process.name}]",
            kind="process",
            payload={"process": process.spec},
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            connectivity=connectivity,
        )
        if self.aggregate == "streaming":
            return self._run_streaming(units)
        return _merge_process_records(process, self.run_units(units))

    def run_sweep(
        self,
        sweep: Any,
        config_factory: Callable[[Any], Any],
        n_replications: int,
        seed: SeedLike,
        kind: str = "broadcast",
        backend: Optional[str] = None,
        label: str = "sweep",
    ) -> list[tuple[Any, Any, list[Any]]]:
        """Decompose a whole :class:`~repro.analysis.sweep.ParameterSweep`.

        Builds the (sweep-point × replication-chunk) units of *every* point
        up front and dispatches them in one pass, so workers stay busy
        across point boundaries (unlike the per-point interception seam,
        which fans out one point at a time).  Point ``i`` uses the ``i``-th
        spawned child of ``seed`` as its root — exactly the stream an
        experiment-style ``spawn_rngs(seed, n_points)`` loop hands point
        ``i`` — and trial streams within a point follow the usual
        per-trial spawn, so results match the sequential loop bit for bit.

        Returns one ``(point, ReplicationSummary, results)`` triple per
        sweep point, in sweep order.
        """
        from repro.core.runner import resolve_backend, resolve_connectivity

        points = list(sweep)
        root = SeedStreamSpec.reserve(seed, len(points))
        units: list[WorkUnit] = []
        spans: list[tuple[int, int, Any]] = []
        for index, point in enumerate(points):
            config = config_factory(point)
            point_units = self.decompose(
                label=f"{label}[{point.label()}]",
                kind=kind,
                payload={"config": config},
                n_replications=n_replications,
                seed=root.child_sequence(index),
                backend=resolve_backend(config, backend),
                connectivity=resolve_connectivity(config),
            )
            spans.append((len(units), len(units) + len(point_units), config))
            units.extend(point_units)
        if self.aggregate == "streaming":
            from repro.core.runner import StreamingReplicationSummary

            fold = _StreamingFold()
            self.run_units(units, consume=fold)
            return [
                (point, StreamingReplicationSummary(fold.merged(start, stop)), [])
                for point, (start, stop, _config) in zip(points, spans)
            ]
        records = self.run_units(units)
        return [
            (point, *_merge_simulation_records(kind, config, records[start:stop]))
            for point, (start, stop, config) in zip(points, spans)
        ]

    def map_replications(
        self,
        fn: Callable[..., Any],
        n_replications: int,
        seed: SeedLike,
        kwargs: Optional[Mapping[str, Any]] = None,
        label: Optional[str] = None,
    ) -> list[Any]:
        """Sharded per-trial map: ``fn(rng, **kwargs)`` for every trial.

        ``fn`` must be module-level (picklable) and return a JSON-able
        payload; trial payloads come back in trial order.  Unpicklable
        payloads (e.g. closures) degrade gracefully to chunked in-process
        execution, but are excluded from the result store — captured state
        is invisible to the content fingerprint, so caching them could
        alias distinct functions.
        """
        units = self.decompose(
            label=label or f"{fn.__module__}:{getattr(fn, '__qualname__', 'fn')}",
            kind="map",
            payload={"fn": fn, "kwargs": dict(kwargs or {})},
            n_replications=n_replications,
            seed=seed,
        )
        records = self.run_units(units)
        trials: list[Any] = []
        for record in records:
            trials.extend(record["trials"])
        return trials


def _config_label(kind: str, config: Any) -> str:
    return f"{kind}[n={getattr(config, 'n_nodes', '?')},k={getattr(config, 'n_agents', '?')}]"


# --------------------------------------------------------------------------- #
# The ambient override (how --jobs reaches experiments' inner loops).
# --------------------------------------------------------------------------- #
#: Context-local rather than a plain module global so that in-process remote
#: workers (threads running :func:`execute_unit` while the main thread holds
#: an :func:`execution_override`) neither see the main thread's executor nor
#: race its install/restore.  Pool workers are separate processes and start
#: from the default (``None``) either way.
_EXECUTOR: ContextVar[Optional[SweepExecutor]] = ContextVar(
    "repro_exec_executor", default=None
)


@contextmanager
def execution_override(executor: Optional[SweepExecutor]) -> Iterator[None]:
    """Route replication runs inside the ``with`` block through ``executor``.

    ``None`` is a true no-op: an executor installed by an enclosing block
    stays active.  The executor's worker pool is shut down when the block
    exits.  Mirrors :func:`repro.core.runner.backend_override`: this is how
    the command line's ``--jobs`` / ``--resume`` flags reach experiments
    that drive their replications internally.
    """
    if executor is None:
        yield
        return
    token = _EXECUTOR.set(executor)
    try:
        yield
    finally:
        _EXECUTOR.reset(token)
        executor.close()


@contextmanager
def _suspended_override() -> Iterator[None]:
    """Temporarily clear the executor override (worker recursion guard)."""
    token = _EXECUTOR.set(None)
    try:
        yield
    finally:
        _EXECUTOR.reset(token)


def current_executor() -> Optional[SweepExecutor]:
    """The active :class:`SweepExecutor`, or ``None``."""
    return _EXECUTOR.get()


def map_replications(
    fn: Callable[..., Any],
    n_replications: int,
    seed: SeedLike = None,
    kwargs: Optional[Mapping[str, Any]] = None,
    label: Optional[str] = None,
) -> list[Any]:
    """Run ``fn(rng, **kwargs)`` for ``n_replications`` independent streams.

    The executor-aware replication map: with no active
    :func:`execution_override`, trials run inline on streams from
    :func:`repro.util.rng.spawn_rngs` — bit-for-bit the classic experiment
    loop.  Under an active executor the same streams are re-derived per
    chunk and trials are sharded (and, with a store, resumable).  Trial
    return values must be JSON-able for the two paths to be interchangeable.
    """
    executor = current_executor()
    if executor is None:
        rngs = spawn_rngs(seed, n_replications)
        return [fn(rng, **dict(kwargs or {})) for rng in rngs]
    return executor.map_replications(
        fn, n_replications, seed, kwargs=kwargs, label=label
    )
