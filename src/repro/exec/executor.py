"""Sharded sweep execution with deterministic resume.

:class:`SweepExecutor` decomposes replicated measurements into
(sweep-point × replication-chunk) :class:`~repro.exec.units.WorkUnit`\\ s,
derives each unit's RNG streams from a serialisable
:class:`~repro.exec.seeds.SeedStreamSpec`, dispatches units either in
process (``jobs=1``, the reference path) or over a
``concurrent.futures.ProcessPoolExecutor`` (``jobs>1``), and merges chunk
records back into the ordinary ``(ReplicationSummary, results)`` shapes.

Determinism contract
--------------------
Trial ``i`` of a sweep point always consumes the stream derived from the
point seed's ``i``-th spawned child — exactly the stream the pre-executor
serial path hands it — so results are bit-for-bit independent of the worker
count, the chunk size and the completion order of units.  Every unit record
passes through the canonical JSON-able form (the same form the
:class:`~repro.exec.store.ResultStore` persists), so a resumed run and an
uninterrupted run assemble identical reports.

The module-global override installed by :func:`execution_override` is how
``--jobs`` reaches the replication runners inside experiments without
per-experiment plumbing, mirroring
:func:`repro.core.runner.backend_override`.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.exec.seeds import SeedStreamSpec
from repro.exec.store import ResultStore
from repro.exec.units import (
    WorkUnit,
    chunk_bounds,
    describe_payload,
    payload_is_picklable,
    unit_key,
)
from repro.util.rng import SeedLike, spawn_rngs
from repro.util.serialization import to_jsonable

#: Environment variable selecting the multiprocessing start method
#: ("fork", "spawn", "forkserver"); unset uses the platform default.
START_METHOD_ENV = "REPRO_EXEC_START_METHOD"


# --------------------------------------------------------------------------- #
# Unit execution (runs inside pool workers; must stay module-level picklable).
# --------------------------------------------------------------------------- #
def execute_unit(unit: WorkUnit) -> dict[str, Any]:
    """Execute one work unit and return its canonical JSON-able record.

    Safe to call in any process: streams are re-derived from the unit's seed
    spec, and any inherited executor override is suspended so nested
    execution can never recurse into a pool.
    """
    with _suspended_override():
        if unit.kind in ("broadcast", "gossip"):
            return _execute_simulation_unit(unit)
        if unit.kind == "process":
            return _execute_process_unit(unit)
        if unit.kind == "map":
            return _execute_map_unit(unit)
        raise ValueError(f"unknown unit kind {unit.kind!r}")


def _execute_simulation_unit(unit: WorkUnit) -> dict[str, Any]:
    from repro.core.runner import run_broadcast_replications, run_gossip_replications

    config = unit.payload["config"]
    streams = unit.seed.trial_rngs(unit.start, unit.stop)
    runner = run_broadcast_replications if unit.kind == "broadcast" else run_gossip_replications
    summary, results = runner(
        config,
        unit.n_trials,
        backend=unit.backend,
        connectivity=unit.connectivity,
        rng_streams=streams,
    )
    return {
        "values": [float(v) for v in summary.values],
        "results": [_result_record(res) for res in results],
    }


def _execute_process_unit(unit: WorkUnit) -> dict[str, Any]:
    from repro.dissemination.kernels import make_process, run_process_replications

    spec = unit.payload["process"]
    process = make_process(spec["name"], **dict(spec.get("kwargs") or {}))
    streams = unit.seed.trial_rngs(unit.start, unit.stop)
    summary, results = run_process_replications(
        process,
        unit.n_trials,
        backend=unit.backend,
        connectivity=unit.connectivity,
        rng_streams=streams,
    )
    return {
        "values": [float(v) for v in summary.values],
        "results": [_result_record(res) for res in results],
    }


def _execute_map_unit(unit: WorkUnit) -> dict[str, Any]:
    fn: Callable[..., Any] = unit.payload["fn"]
    kwargs = dict(unit.payload.get("kwargs") or {})
    trials = []
    for rng in unit.seed.trial_rngs(unit.start, unit.stop):
        trials.append(to_jsonable(fn(rng, **kwargs)))
    return {"trials": trials}


#: Result-dataclass integer-array fields carried through records; for
#: simulation kinds ``config`` is reattached from the unit payload at merge
#: time instead of being serialised once per trial.
_INT_ARRAY_FIELDS = (
    "informed_curve",
    "knowledge_curve",
    "frontier_history",
    "active_curve",
    "survival_curve",
    "coverage_curve",
)


def _result_record(result: Any) -> dict[str, Any]:
    """A simulation result dataclass as a JSON-able record (minus config)."""
    import dataclasses

    record = {}
    for f in dataclasses.fields(result):
        if f.name == "config":
            continue
        record[f.name] = to_jsonable(getattr(result, f.name))
    return record


def _result_from_record(kind: str, record: Mapping[str, Any], config: Any) -> Any:
    from repro.core.gossip import GossipResult
    from repro.core.simulation import BroadcastResult

    fields = dict(record)
    for name in _INT_ARRAY_FIELDS:
        if fields.get(name) is not None:
            fields[name] = np.asarray(fields[name], dtype=np.int64)
    cls = BroadcastResult if kind == "broadcast" else GossipResult
    return cls(config=config, **fields)


def _process_result_from_record(result_class: type, record: Mapping[str, Any]) -> Any:
    fields = dict(record)
    for name in _INT_ARRAY_FIELDS:
        if fields.get(name) is not None:
            fields[name] = np.asarray(fields[name], dtype=np.int64)
    return result_class(**fields)


def _merge_process_records(
    process: Any, records: Sequence[Mapping[str, Any]]
) -> tuple[Any, list[Any]]:
    """Process-kind chunk records -> ``(ReplicationSummary, results)``."""
    from repro.core.runner import summarise_values

    values: list[float] = []
    results: list[Any] = []
    for record in records:
        values.extend(float(v) for v in record["values"])
        results.extend(
            _process_result_from_record(process.result_class, res)
            for res in record["results"]
        )
    return summarise_values(values), results


def _merge_simulation_records(
    kind: str, config: Any, records: Sequence[Mapping[str, Any]]
) -> tuple[Any, list[Any]]:
    """Chunk records (in trial order) -> ``(ReplicationSummary, results)``."""
    from repro.core.runner import summarise_values

    values: list[float] = []
    results: list[Any] = []
    for record in records:
        values.extend(float(v) for v in record["values"])
        results.extend(_result_from_record(kind, res, config) for res in record["results"])
    return summarise_values(values), results


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #
class SweepExecutor:
    """Sharded, resumable executor for replicated sweep measurements.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes every unit in process, in order —
        the reference path the parallel path must match bit for bit.
    chunk_size:
        Trials per work unit (default:
        :func:`~repro.exec.units.default_chunk_size`, a function of the
        replication count only, never of ``jobs``, so unit keys are stable
        across worker counts).
    store:
        Optional :class:`~repro.exec.store.ResultStore` (or directory path).
        Completed units are persisted there and skipped on re-runs.
    start_method:
        Multiprocessing start method; default: ``$REPRO_EXEC_START_METHOD``
        or the platform default.
    """

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        store: Optional[ResultStore | str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self.store = ResultStore(store) if isinstance(store, (str, os.PathLike)) else store
        self.start_method = start_method or os.environ.get(START_METHOD_ENV) or None
        self._pool: Optional[ProcessPoolExecutor] = None

    @classmethod
    def from_options(
        cls,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        store: Optional[ResultStore | str] = None,
    ) -> Optional["SweepExecutor"]:
        """An executor when any option departs from the defaults, else ``None``.

        The single activation rule behind ``--jobs`` / ``--resume`` /
        ``--chunk-size``: all-default options mean "keep the classic
        in-process path" (``None`` composes with
        :func:`execution_override` as a true no-op).
        """
        if jobs == 1 and chunk_size is None and store is None:
            return None
        return cls(jobs=jobs, chunk_size=chunk_size, store=store)

    # -- lifecycle ---------------------------------------------------------- #
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _pool_instance(self) -> ProcessPoolExecutor:
        if self._pool is None:
            mp_context = None
            if self.start_method is not None:
                import multiprocessing

                mp_context = multiprocessing.get_context(self.start_method)
            self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=mp_context)
        return self._pool

    # -- decomposition ------------------------------------------------------ #
    def decompose(
        self,
        label: str,
        kind: str,
        payload: Mapping[str, Any],
        n_replications: int,
        seed: SeedLike,
        backend: Optional[str] = None,
        connectivity: Optional[str] = None,
    ) -> list[WorkUnit]:
        """Split one sweep point into replication-chunk work units.

        Consumes the live seed state exactly like the inline path's
        ``spawn_rngs`` call would (:meth:`SeedStreamSpec.reserve`), so
        reusing one seed object across runs yields disjoint streams on
        either path.
        """
        spec = SeedStreamSpec.reserve(seed, n_replications)
        return [
            WorkUnit(
                label=label,
                kind=kind,
                payload=payload,
                n_replications=n_replications,
                start=start,
                stop=stop,
                seed=spec,
                backend=backend,
                connectivity=connectivity,
            )
            for start, stop in chunk_bounds(n_replications, self.chunk_size)
        ]

    # -- execution ---------------------------------------------------------- #
    def run_units(self, units: Sequence[WorkUnit]) -> list[dict[str, Any]]:
        """Execute (or load) every unit; records are returned in unit order.

        Units whose key is already in the store are loaded from disk and not
        re-executed.  Fresh results are written to the store as they
        complete, so an interrupted call leaves a valid partial store.
        """
        records: list[Optional[dict[str, Any]]] = [None] * len(units)
        # Picklability gates both pool dispatch and the store: an unpicklable
        # payload (e.g. a closure) has no faithful content fingerprint — its
        # captured state is invisible to the unit key — so it must neither
        # read from nor write to the store.  Checked once per distinct
        # payload object, not once per unit.
        picklable_by_payload: dict[int, bool] = {}
        storable: list[bool] = []
        for unit in units:
            payload_id = id(unit.payload)
            if payload_id not in picklable_by_payload:
                picklable_by_payload[payload_id] = payload_is_picklable(unit.payload)
            storable.append(picklable_by_payload[payload_id])

        # Keys (and the payload descriptions they hash) exist for the store
        # only; units sharing one payload object share one description.
        keys: list[Optional[str]] = [None] * len(units)
        fingerprints: list[Optional[dict[str, Any]]] = [None] * len(units)
        if self.store is not None:
            described_by_payload: dict[int, dict[str, Any]] = {}
            for index, unit in enumerate(units):
                if not storable[index]:
                    continue
                payload_id = id(unit.payload)
                if payload_id not in described_by_payload:
                    described_by_payload[payload_id] = describe_payload(unit.payload)
                fingerprints[index] = unit.fingerprint(described_by_payload[payload_id])
                keys[index] = unit_key(unit, described_by_payload[payload_id])

        pending: list[int] = []
        for index, key in enumerate(keys):
            stored = self.store.get(key) if key is not None else None
            if stored is not None:
                records[index] = stored
            else:
                pending.append(index)

        parallel: list[int] = []
        if self.jobs > 1 and len(pending) > 1:
            parallel = [i for i in pending if storable[i]]
        parallel_set = set(parallel)
        inline = [i for i in pending if i not in parallel_set]

        if parallel:
            pool = self._pool_instance()
            futures = {pool.submit(execute_unit, units[i]): i for i in parallel}
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    records[index] = self._complete(
                        keys[index], fingerprints[index], future.result()
                    )
        for index in inline:
            records[index] = self._complete(
                keys[index], fingerprints[index], execute_unit(units[index])
            )
        return [record for record in records if record is not None]

    def _complete(
        self,
        key: Optional[str],
        fingerprint: Optional[dict[str, Any]],
        record: dict[str, Any],
    ) -> dict[str, Any]:
        if self.store is not None and key is not None:
            self.store.put(key, record, fingerprint=fingerprint)
        return record

    # -- high-level entry points -------------------------------------------- #
    def run_replications(
        self,
        kind: str,
        config: Any,
        n_replications: int,
        seed: SeedLike,
        backend: str,
        connectivity: Optional[str] = None,
        label: Optional[str] = None,
    ) -> tuple[Any, list[Any]]:
        """Sharded equivalent of ``run_broadcast/gossip_replications``.

        ``backend`` (and ``connectivity``, when given) must already be
        resolved to concrete choices (resolution happens in the calling
        process so worker processes never depend on ambient override state).
        """
        units = self.decompose(
            label=label or _config_label(kind, config),
            kind=kind,
            payload={"config": config},
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            connectivity=connectivity,
        )
        return _merge_simulation_records(kind, config, self.run_units(units))

    def run_process(
        self,
        process: Any,
        n_replications: int,
        seed: SeedLike,
        backend: str,
        connectivity: Optional[str] = None,
        label: Optional[str] = None,
    ) -> tuple[Any, list[Any]]:
        """Sharded equivalent of
        :func:`repro.dissemination.kernels.run_process_replications`.

        The unit payload is the kernel's JSON-able ``spec`` — workers
        rebuild the kernel by name, so process units are picklable *and*
        content-addressable in a resume store.  ``backend`` and
        ``connectivity`` must already be resolved, like
        :meth:`run_replications`.
        """
        units = self.decompose(
            label=label or f"process[{process.name}]",
            kind="process",
            payload={"process": process.spec},
            n_replications=n_replications,
            seed=seed,
            backend=backend,
            connectivity=connectivity,
        )
        return _merge_process_records(process, self.run_units(units))

    def run_sweep(
        self,
        sweep: Any,
        config_factory: Callable[[Any], Any],
        n_replications: int,
        seed: SeedLike,
        kind: str = "broadcast",
        backend: Optional[str] = None,
        label: str = "sweep",
    ) -> list[tuple[Any, Any, list[Any]]]:
        """Decompose a whole :class:`~repro.analysis.sweep.ParameterSweep`.

        Builds the (sweep-point × replication-chunk) units of *every* point
        up front and dispatches them in one pass, so workers stay busy
        across point boundaries (unlike the per-point interception seam,
        which fans out one point at a time).  Point ``i`` uses the ``i``-th
        spawned child of ``seed`` as its root — exactly the stream an
        experiment-style ``spawn_rngs(seed, n_points)`` loop hands point
        ``i`` — and trial streams within a point follow the usual
        per-trial spawn, so results match the sequential loop bit for bit.

        Returns one ``(point, ReplicationSummary, results)`` triple per
        sweep point, in sweep order.
        """
        from repro.core.runner import resolve_backend, resolve_connectivity

        points = list(sweep)
        root = SeedStreamSpec.reserve(seed, len(points))
        units: list[WorkUnit] = []
        spans: list[tuple[int, int, Any]] = []
        for index, point in enumerate(points):
            config = config_factory(point)
            point_units = self.decompose(
                label=f"{label}[{point.label()}]",
                kind=kind,
                payload={"config": config},
                n_replications=n_replications,
                seed=root.child_sequence(index),
                backend=resolve_backend(config, backend),
                connectivity=resolve_connectivity(config),
            )
            spans.append((len(units), len(units) + len(point_units), config))
            units.extend(point_units)
        records = self.run_units(units)
        return [
            (point, *_merge_simulation_records(kind, config, records[start:stop]))
            for point, (start, stop, config) in zip(points, spans)
        ]

    def map_replications(
        self,
        fn: Callable[..., Any],
        n_replications: int,
        seed: SeedLike,
        kwargs: Optional[Mapping[str, Any]] = None,
        label: Optional[str] = None,
    ) -> list[Any]:
        """Sharded per-trial map: ``fn(rng, **kwargs)`` for every trial.

        ``fn`` must be module-level (picklable) and return a JSON-able
        payload; trial payloads come back in trial order.  Unpicklable
        payloads (e.g. closures) degrade gracefully to chunked in-process
        execution, but are excluded from the result store — captured state
        is invisible to the content fingerprint, so caching them could
        alias distinct functions.
        """
        units = self.decompose(
            label=label or f"{fn.__module__}:{getattr(fn, '__qualname__', 'fn')}",
            kind="map",
            payload={"fn": fn, "kwargs": dict(kwargs or {})},
            n_replications=n_replications,
            seed=seed,
        )
        records = self.run_units(units)
        trials: list[Any] = []
        for record in records:
            trials.extend(record["trials"])
        return trials


def _config_label(kind: str, config: Any) -> str:
    return f"{kind}[n={getattr(config, 'n_nodes', '?')},k={getattr(config, 'n_agents', '?')}]"


# --------------------------------------------------------------------------- #
# The process-wide override (how --jobs reaches experiments' inner loops).
# --------------------------------------------------------------------------- #
_EXECUTOR: Optional[SweepExecutor] = None


@contextmanager
def execution_override(executor: Optional[SweepExecutor]) -> Iterator[None]:
    """Route replication runs inside the ``with`` block through ``executor``.

    ``None`` is a true no-op: an executor installed by an enclosing block
    stays active.  The executor's worker pool is shut down when the block
    exits.  Mirrors :func:`repro.core.runner.backend_override`: this is how
    the command line's ``--jobs`` / ``--resume`` flags reach experiments
    that drive their replications internally.
    """
    global _EXECUTOR
    if executor is None:
        yield
        return
    previous = _EXECUTOR
    _EXECUTOR = executor
    try:
        yield
    finally:
        _EXECUTOR = previous
        executor.close()


@contextmanager
def _suspended_override() -> Iterator[None]:
    """Temporarily clear the executor override (worker recursion guard)."""
    global _EXECUTOR
    previous = _EXECUTOR
    _EXECUTOR = None
    try:
        yield
    finally:
        _EXECUTOR = previous


def current_executor() -> Optional[SweepExecutor]:
    """The active :class:`SweepExecutor`, or ``None``."""
    return _EXECUTOR


def map_replications(
    fn: Callable[..., Any],
    n_replications: int,
    seed: SeedLike = None,
    kwargs: Optional[Mapping[str, Any]] = None,
    label: Optional[str] = None,
) -> list[Any]:
    """Run ``fn(rng, **kwargs)`` for ``n_replications`` independent streams.

    The executor-aware replication map: with no active
    :func:`execution_override`, trials run inline on streams from
    :func:`repro.util.rng.spawn_rngs` — bit-for-bit the classic experiment
    loop.  Under an active executor the same streams are re-derived per
    chunk and trials are sharded (and, with a store, resumable).  Trial
    return values must be JSON-able for the two paths to be interchangeable.
    """
    executor = current_executor()
    if executor is None:
        rngs = spawn_rngs(seed, n_replications)
        return [fn(rng, **dict(kwargs or {})) for rng in rngs]
    return executor.map_replications(
        fn, n_replications, seed, kwargs=kwargs, label=label
    )
