"""Deterministic fault injection for the sharded executor.

A :class:`FaultPlan` decides — as a pure function of a unit's content hash
and its submission number — whether an execution attempt should crash its
worker process, hang past the unit timeout, raise, or return a corrupted
record.  Because the decision is derived by hashing, the *same* plan makes
the *same* units fail in the *same* way in every process and on every run,
which is what lets the chaos suite assert that a sweep completed under
injected faults is bit-for-bit identical to a fault-free ``jobs=1`` run.

Faults fire only on submissions below :attr:`FaultPlan.max_faulted_submissions`
(default: the first), so a retried or requeued unit succeeds — the plan
models transient infrastructure failure, the normal case the retry layer
exists for.  Sticky failures are modelled by raising the threshold.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Optional

#: Fault kinds a plan can select, in threshold order.
FAULT_KINDS = ("crash", "hang", "error", "corrupt")


class FaultInjectionError(RuntimeError):
    """Raised by an ``"error"`` fault (and by process faults run in-process)."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic per-unit fault schedule, keyed off unit hashes.

    Attributes
    ----------
    crash_rate:
        Probability that an execution SIGKILLs its worker process mid-unit
        (the pool breaks; in-process execution raises
        :class:`FaultInjectionError` instead of killing the interpreter).
    hang_rate:
        Probability that an execution sleeps :attr:`hang_seconds` before
        running — long enough to trip a configured unit timeout.
    error_rate:
        Probability that an execution raises :class:`FaultInjectionError`.
    corrupt_rate:
        Probability that an execution completes but returns a truncated
        record (one trial dropped), which record validation must catch.
    hang_seconds:
        Sleep duration of a ``"hang"`` fault.  Keep it bounded: with no
        timeout configured a hung unit simply completes late.
    salt:
        Extra hash input so distinct plans fault distinct unit subsets.
    max_faulted_submissions:
        Submissions ``0 .. max_faulted_submissions-1`` of a unit are
        eligible to fault; later ones never do, so retries converge.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    corrupt_rate: float = 0.0
    hang_seconds: float = 30.0
    salt: int = 0
    max_faulted_submissions: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "error_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        total = self.crash_rate + self.hang_rate + self.error_rate + self.corrupt_rate
        if total > 1.0:
            raise ValueError(f"fault rates must sum to <= 1, got {total}")
        if self.hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, got {self.hang_seconds}")
        if self.max_faulted_submissions < 0:
            raise ValueError(
                f"max_faulted_submissions must be >= 0, got {self.max_faulted_submissions}"
            )

    def fault_for(self, token: str, submission: int) -> Optional[str]:
        """The fault kind for submission ``submission`` of unit ``token``.

        ``token`` is any stable identity of the unit (the executor passes the
        unit's content hash).  Returns one of :data:`FAULT_KINDS` or ``None``;
        the same arguments always return the same answer, in any process.
        """
        if submission >= self.max_faulted_submissions:
            return None
        digest = hashlib.sha256(
            f"{self.salt}:{token}:{submission}".encode("utf-8")
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        threshold = 0.0
        for kind, rate in zip(
            FAULT_KINDS,
            (self.crash_rate, self.hang_rate, self.error_rate, self.corrupt_rate),
        ):
            threshold += rate
            if u < threshold:
                return kind
        return None

    def apply(self, token: str, submission: int, in_worker: bool) -> Optional[str]:
        """Apply any pre-execution fault; return the kind that still applies.

        ``"crash"`` SIGKILLs the current process when ``in_worker`` (a pool
        worker, whose death the dispatcher recovers from) and raises
        :class:`FaultInjectionError` otherwise — in-process execution must
        degrade to an exception, never take the whole run down.  ``"hang"``
        sleeps and then lets execution proceed.  ``"error"`` raises.
        ``"corrupt"`` is returned to the caller, which corrupts the record
        *after* executing the unit.
        """
        fault = self.fault_for(token, submission)
        if fault == "crash":
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise FaultInjectionError(
                f"injected crash (in-process) for unit {token} submission {submission}"
            )
        if fault == "hang":
            time.sleep(self.hang_seconds)
            return None
        if fault == "error":
            raise FaultInjectionError(
                f"injected error for unit {token} submission {submission}"
            )
        return fault


#: Transport fault kinds a :class:`TransportFaultPlan` can select.
TRANSPORT_FAULT_KINDS = ("drop", "slow", "dup_push")


@dataclass(frozen=True)
class TransportFaultPlan:
    """Deterministic fault schedule for the remote push path.

    The HTTP analogue of :class:`FaultPlan`: a pure function of a unit's
    content hash and the push attempt number, so the same plan drops, delays
    and duplicates the same pushes in every process and on every run.  The
    coordinator's idempotent push handling is what the chaos suite pins
    down with these: a sweep completed under transport faults must merge
    bit-for-bit identical to a fault-free run.

    Attributes
    ----------
    drop_rate:
        Probability that a push's *response* is lost: the worker performs
        the push, discards the answer, and retries — exercising the
        coordinator's byte-equal duplicate acceptance.
    slow_rate:
        Probability that the worker sleeps :attr:`slow_seconds` before
        pushing — long enough (with a short lease TTL) for another worker
        to steal the lease and double-run the unit.
    dup_push_rate:
        Probability that the worker pushes the record twice back to back.
    slow_seconds:
        Sleep duration of a ``"slow"`` fault.
    salt:
        Extra hash input so distinct plans fault distinct push subsets.
    max_faulted_submissions:
        Push attempts ``0 .. max_faulted_submissions-1`` of a unit are
        eligible to fault; later ones never do, so retried pushes converge.
    """

    drop_rate: float = 0.0
    slow_rate: float = 0.0
    dup_push_rate: float = 0.0
    slow_seconds: float = 0.5
    salt: int = 0
    max_faulted_submissions: int = 1

    def __post_init__(self) -> None:
        for name in ("drop_rate", "slow_rate", "dup_push_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        total = self.drop_rate + self.slow_rate + self.dup_push_rate
        if total > 1.0:
            raise ValueError(f"fault rates must sum to <= 1, got {total}")
        if self.slow_seconds < 0:
            raise ValueError(f"slow_seconds must be >= 0, got {self.slow_seconds}")
        if self.max_faulted_submissions < 0:
            raise ValueError(
                f"max_faulted_submissions must be >= 0, got {self.max_faulted_submissions}"
            )

    def fault_for(self, token: str, submission: int) -> Optional[str]:
        """The transport fault for push attempt ``submission`` of ``token``.

        Returns one of :data:`TRANSPORT_FAULT_KINDS` or ``None``; the same
        arguments always return the same answer, in any process.  The hash
        input carries a ``transport`` tag so a :class:`FaultPlan` and a
        transport plan sharing a salt fault independent subsets.
        """
        if submission >= self.max_faulted_submissions:
            return None
        digest = hashlib.sha256(
            f"transport:{self.salt}:{token}:{submission}".encode("utf-8")
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        threshold = 0.0
        for kind, rate in zip(
            TRANSPORT_FAULT_KINDS,
            (self.drop_rate, self.slow_rate, self.dup_push_rate),
        ):
            threshold += rate
            if u < threshold:
                return kind
        return None


def corrupt_record(record: dict[str, Any]) -> dict[str, Any]:
    """A truncated copy of ``record``: the last entry of every trial-shaped
    list is dropped, so the record no longer matches its unit's trial count.

    This is the shape of real corruption the validation layer must catch —
    plausible JSON, wrong content — rather than something trivially broken.
    """
    mangled = dict(record)
    for name in ("values", "results", "trials"):
        if isinstance(mangled.get(name), list):
            mangled[name] = mangled[name][:-1]
    return mangled
