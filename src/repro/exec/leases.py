"""Lease table: cooperative unit ownership for concurrent executors.

When several executors (or a restarted one) share a :class:`ResultStore`,
each pending work unit should be executed by exactly one of them.  A
:class:`LeaseTable` is the on-disk claim registry that arranges this: a
directory of ``<unit-key>.lease`` files living beside the store, where

* **claim** atomically creates the lease file (``O_CREAT | O_EXCL``), so of
  two racing executors exactly one wins;
* **heartbeat** touches the file's mtime while the owner is still working;
* a lease whose mtime is older than the TTL is **expired** — its owner
  crashed or lost the unit — and may be *stolen* (atomically replaced) by
  another executor, which requeues the unit;
* **release** removes the file once the unit's record is safely in the
  store.

The table is a liveness mechanism, not a lock: correctness never depends on
it.  Units are pure functions of their spec, so even a double-run (possible
in the instant between expiry and a steal racing a slow heartbeat) produces
the identical record, and the store's atomic writes make the duplicate put
a harmless overwrite with equal bytes.  What the table guarantees is that
no unit is *orphaned* — every claimed unit either completes or its lease
expires and someone else picks it up.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.obs.metrics import Counter

#: Default seconds without a heartbeat before a lease counts as expired.
DEFAULT_LEASE_TTL = 60.0


class LeaseStats:
    """Counters a :class:`LeaseTable` accumulates, for execution reports.

    The attributes read and assign as plain ``int``s (existing call sites
    do ``stats.claims += 1``) but are backed by :class:`repro.obs.Counter`
    instruments, so an executor can adopt them into its
    :class:`~repro.obs.MetricsRegistry` and the execution report becomes a
    registry snapshot.  See ``docs/OBSERVABILITY.md``.
    """

    def __init__(self) -> None:
        self._claims = Counter(
            "repro_lease_claims_total", help="Lease claims won (fresh claims and steals)."
        )
        self._conflicts = Counter(
            "repro_lease_conflicts_total", help="Lease claims lost to another live owner."
        )
        self._steals = Counter(
            "repro_lease_steals_total", help="Expired leases stolen from a dead owner."
        )
        self._releases = Counter(
            "repro_lease_releases_total", help="Leases released after unit completion."
        )

    def counters(self) -> tuple[Counter, ...]:
        """The backing instruments, for adoption into a registry."""
        return (self._claims, self._conflicts, self._steals, self._releases)

    @property
    def claims(self) -> int:
        return int(self._claims.value)

    @claims.setter
    def claims(self, value: int) -> None:
        self._claims.set(value)

    @property
    def conflicts(self) -> int:
        return int(self._conflicts.value)

    @conflicts.setter
    def conflicts(self, value: int) -> None:
        self._conflicts.set(value)

    @property
    def steals(self) -> int:
        return int(self._steals.value)

    @steals.setter
    def steals(self, value: int) -> None:
        self._steals.set(value)

    @property
    def releases(self) -> int:
        return int(self._releases.value)

    @releases.setter
    def releases(self, value: int) -> None:
        self._releases.set(value)


@dataclass
class LeaseTable:
    """Directory of per-unit lease files, shared by cooperating executors."""

    directory: Union[str, Path]
    ttl: float = DEFAULT_LEASE_TTL
    owner: str = field(default="")

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")
        if not self.owner:
            self.owner = f"{os.getpid()}-{uuid.uuid4().hex[:12]}"
        self.stats = LeaseStats()

    def path_for(self, key: str) -> Path:
        """Path of the lease file for ``key``."""
        return Path(self.directory) / f"{key}.lease"

    # -- claiming ----------------------------------------------------------- #
    def claim(self, key: str) -> bool:
        """Try to take (or re-take, or steal-if-expired) the lease on ``key``.

        Returns ``True`` when this table now owns the lease: a fresh claim,
        a re-claim of a lease it already holds, or a steal of an expired
        one.  Returns ``False`` when another live owner holds it.
        """
        path = self.path_for(key)
        payload = json.dumps({"owner": self.owner, "claimed_at": time.time()})
        # The payload is written to a private temp file first and hard-linked
        # into place: ``os.link`` fails with ``FileExistsError`` exactly like
        # ``O_CREAT | O_EXCL``, but the lease file becomes visible with its
        # payload already complete.  Creating the file empty and writing the
        # payload afterwards (the previous scheme) left a window in which a
        # concurrent claimant read ``holder() is None`` and stole a lease
        # whose owner was alive and mid-write.
        tmp: Optional[Path] = path.with_name(path.name + f".steal-{self.owner}")
        tmp.write_text(payload, encoding="utf-8")
        try:
            try:
                os.link(tmp, path)
            except FileExistsError:
                pass
            else:
                self.stats.claims += 1
                return True
            if self.owns(key):
                return True
            self._sweep_stale_temps()
            # Only a lease whose mtime has outlived the TTL is stealable.  An
            # unreadable payload with a live mtime is NOT: its writer may be
            # alive (mid-write, or about to heartbeat), and treating corrupt
            # as stealable is what let racing claimants both "win".
            if not self.expired(key):
                self.stats.conflicts += 1
                return False
            # Expired lease: steal it with an atomic replace, so concurrent
            # stealers cannot interleave partial writes.
            os.replace(tmp, path)
            tmp = None  # consumed by the rename
            self.stats.claims += 1
            self.stats.steals += 1
            return True
        finally:
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def claim_many(self, keys: "list[str] | tuple[str, ...]") -> list[str]:
        """Claim a batch of keys in one sweep; returns the keys now owned.

        The batched fast path writes the claim payload to **one** temp file
        and hard-links it to every lease name that does not exist yet — one
        payload write and one temp unlink for the whole batch instead of one
        per key.  The linked names share an inode, so the batch shares one
        mtime: a heartbeat on any of them refreshes them all, which is
        exactly the liveness the owner (who heartbeats every held key
        together) already provides.  Keys whose lease file already exists
        fall back to the ordinary :meth:`claim` path (re-claim, conflict or
        steal) one at a time.
        """
        if not keys:
            return []
        payload = json.dumps({"owner": self.owner, "claimed_at": time.time()})
        # The name matches the ``*.lease.steal-*`` pattern so an abandoned
        # copy is swept by ``_sweep_stale_temps`` like any claim temp.
        tmp = Path(self.directory) / f".batch.lease.steal-{self.owner}"
        tmp.write_text(payload, encoding="utf-8")
        won: list[str] = []
        contested: list[str] = []
        try:
            for key in keys:
                try:
                    os.link(tmp, self.path_for(key))
                except FileExistsError:
                    contested.append(key)
                else:
                    self.stats.claims += 1
                    won.append(key)
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
        for key in contested:
            if self.claim(key):
                won.append(key)
        return won

    def holder(self, key: str) -> Optional[str]:
        """Owner id recorded in the lease file, or ``None`` if absent/corrupt."""
        try:
            document = json.loads(self.path_for(key).read_text(encoding="utf-8"))
            return str(document["owner"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def owns(self, key: str) -> bool:
        """Whether this table currently holds the lease on ``key``."""
        return self.holder(key) == self.owner

    def expired(self, key: str) -> bool:
        """Whether the lease on ``key`` has gone :attr:`ttl` without a heartbeat.

        A missing file counts as expired (there is nothing to wait for).
        """
        try:
            mtime = self.path_for(key).stat().st_mtime
        except OSError:
            return True
        return (time.time() - mtime) > self.ttl

    # -- liveness ----------------------------------------------------------- #
    def heartbeat(self, keys: list[str] | tuple[str, ...]) -> None:
        """Refresh the mtimes of leases this table owns (others untouched)."""
        for key in keys:
            if self.owns(key):
                try:
                    os.utime(self.path_for(key))
                except OSError:
                    pass

    def release(self, key: str) -> None:
        """Drop the lease on ``key`` if this table owns it."""
        if self.owns(key):
            try:
                self.path_for(key).unlink()
                self.stats.releases += 1
            except OSError:
                pass

    def _sweep_stale_temps(self) -> None:
        """Remove ``.steal-*`` temp files abandoned by crashed claimants.

        A claimant that dies between writing its temp file and linking or
        renaming it leaves the temp behind; anything older than the TTL can
        never be consumed and is deleted.  Live temps are left alone.
        """
        now = time.time()
        for tmp in Path(self.directory).glob("*.lease.steal-*"):
            try:
                if (now - tmp.stat().st_mtime) > self.ttl:
                    tmp.unlink()
            except OSError:
                pass

    def keys(self) -> list[str]:
        """Keys of all live lease files (stale steal temps are swept)."""
        self._sweep_stale_temps()
        return sorted(p.name[: -len(".lease")] for p in Path(self.directory).glob("*.lease"))
