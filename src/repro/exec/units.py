"""Work units: the atom of sharded sweep execution.

A :class:`WorkUnit` is one (sweep-point × replication-chunk) slice of a
sweep: "run trials ``start .. stop-1`` of this payload, with streams derived
from this seed spec, on this backend".  Units are

* **picklable** — they cross the process boundary to pool workers;
* **content-addressed** — :func:`unit_key` hashes a canonical fingerprint of
  everything that determines the unit's result, so the on-disk
  :class:`~repro.exec.store.ResultStore` can recognise completed units
  across interrupted runs;
* **order-free** — a unit's result depends only on its own fields, never on
  worker count, scheduling order or how the remaining trials are chunked.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.exec.seeds import SeedStreamSpec

#: Payload kinds understood by :func:`repro.exec.executor.execute_unit`.
UNIT_KINDS = ("broadcast", "gossip", "map", "process")


@dataclass(frozen=True)
class WorkUnit:
    """One replication chunk of one sweep point.

    Attributes
    ----------
    label:
        Human-readable identity of the sweep point (e.g. ``"E1[k=32]"``);
        part of the fingerprint, so it must be stable across runs.
    kind:
        ``"broadcast"`` / ``"gossip"`` (a simulation config payload),
        ``"process"`` (a registered dissemination process-kernel spec) or
        ``"map"`` (a module-level trial function payload).
    payload:
        Kind-specific work description.  For simulation kinds:
        ``{"config": BroadcastConfig | GossipConfig}``.  For process kind:
        ``{"process": {"name": ..., "kwargs": {...}}}`` (a
        :attr:`repro.dissemination.kernels.ProcessKernel.spec`).  For map
        kind: ``{"fn": <module-level callable>, "kwargs": {...}}``.
    n_replications:
        Total number of trials at this sweep point (the chunk is a slice of
        this range; the total is part of the identity so chunk layouts of
        different totals never collide).
    start, stop:
        The half-open trial range this unit covers.
    seed:
        Stream spec of the sweep point's root seed; trial ``i`` uses child
        stream ``i``.
    backend:
        Resolved replication backend for simulation kinds (``"serial"``,
        ``"batched"`` or ``"compiled"``), or ``None`` for map units.
    connectivity:
        Resolved connectivity engine for simulation kinds (``"recompute"``
        or ``"incremental"``), or ``None`` for map units.  Resolved in the
        dispatching process — like ``backend`` — so workers never depend on
        ambient override state.  Neither field is part of the unit
        fingerprint: all backends and both engines are bit-for-bit identical
        by contract (property-tested), so keying the store on either choice
        would only invalidate resume stores and split the cache without
        changing any stored result — a store written on a compiled host
        resumes cleanly on one without a provider, and vice versa.
    """

    label: str
    kind: str
    payload: Mapping[str, Any]
    n_replications: int
    start: int
    stop: int
    seed: SeedStreamSpec
    backend: Optional[str] = None
    connectivity: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in UNIT_KINDS:
            raise ValueError(f"kind must be one of {UNIT_KINDS}, got {self.kind!r}")
        if not (0 <= self.start < self.stop <= self.n_replications):
            raise ValueError(
                f"invalid chunk [{self.start}, {self.stop}) of "
                f"{self.n_replications} replications"
            )

    @property
    def n_trials(self) -> int:
        """Number of trials in this chunk."""
        return self.stop - self.start

    def fingerprint(self, described_payload: Optional[dict[str, Any]] = None) -> dict[str, Any]:
        """Canonical JSON-able identity of this unit (hashed by :func:`unit_key`).

        ``described_payload`` short-circuits :func:`describe_payload` when
        the caller already described the (typically shared) payload once for
        a whole chunk range.
        """
        return {
            "label": self.label,
            "kind": self.kind,
            "payload": (
                describe_payload(self.payload)
                if described_payload is None
                else described_payload
            ),
            "n_replications": self.n_replications,
            "start": self.start,
            "stop": self.stop,
            "seed": self.seed.as_json(),
        }


def unit_key(unit: WorkUnit, described_payload: Optional[dict[str, Any]] = None) -> str:
    """Content hash identifying ``unit`` in a :class:`ResultStore`."""
    canonical = json.dumps(
        unit.fingerprint(described_payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def describe_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """A JSON-able description of a unit payload, for fingerprints.

    Callables are identified by module-qualified name; everything else goes
    through :func:`repro.util.serialization.to_jsonable`, falling back to a
    pickle digest for objects with no JSON form (e.g. domain grids).
    """
    described: dict[str, Any] = {}
    for key, value in payload.items():
        if callable(value):
            described[key] = f"{value.__module__}:{getattr(value, '__qualname__', repr(value))}"
        else:
            described[key] = _describe_value(value)
    return described


def _describe_value(value: Any) -> Any:
    from repro.util.serialization import to_jsonable

    try:
        return to_jsonable(value)
    except TypeError:
        pass
    try:
        digest = hashlib.sha256(pickle.dumps(value, protocol=4)).hexdigest()[:16]
        return {"__pickle_sha256__": digest, "type": type(value).__name__}
    except Exception:
        # No faithful content description exists (e.g. a lambda buried in
        # kwargs).  Such payloads never reach the store — the executor
        # excludes unpicklable payloads from it — so the placeholder only
        # has to be JSON-able, not collision-free.
        return {"__unpicklable__": True, "type": type(value).__name__}


def default_chunk_size(n_replications: int) -> int:
    """Default trials per unit: about eight units per sweep point.

    Deliberately a function of the replication count only — never of the
    worker count — so that the chunk layout (and with it every unit key in a
    resume store) is identical across ``--jobs`` settings.
    """
    return max(1, -(-n_replications // 8))


def chunk_bounds(n_replications: int, chunk_size: Optional[int] = None) -> list[tuple[int, int]]:
    """Split ``n_replications`` trials into contiguous ``(start, stop)`` chunks."""
    if n_replications <= 0:
        raise ValueError(f"n_replications must be positive, got {n_replications}")
    size = default_chunk_size(n_replications) if chunk_size is None else int(chunk_size)
    if size <= 0:
        raise ValueError(f"chunk_size must be positive, got {size}")
    return [(start, min(start + size, n_replications)) for start in range(0, n_replications, size)]


def record_matches_unit(unit: WorkUnit, record: Any) -> bool:
    """Whether ``record`` has the shape ``unit``'s execution must produce.

    The contract per kind: map units return ``{"trials": [...]}``,
    simulation and process units return ``{"values": [...], "results":
    [...]}``, and every trial-shaped list holds exactly ``unit.n_trials``
    entries.  This is the cheap structural check the executor applies to
    every fresh *and* stored record before merging — a truncated or
    corrupted record (from a faulty worker, a torn store file, or fault
    injection) must trigger a retry/quarantine, never a silent merge.
    """
    if not isinstance(record, Mapping):
        return False
    if unit.kind == "map":
        trials = record.get("trials")
        return isinstance(trials, list) and len(trials) == unit.n_trials
    values = record.get("values")
    results = record.get("results")
    return (
        isinstance(values, list)
        and isinstance(results, list)
        and len(values) == unit.n_trials
        and len(results) == unit.n_trials
    )


def payload_is_picklable(payload: Mapping[str, Any]) -> bool:
    """Whether a payload can cross the process boundary."""
    try:
        pickle.dumps(dict(payload), protocol=4)
        return True
    except Exception:
        return False
