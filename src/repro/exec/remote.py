"""Multi-host sweep execution: HTTP coordinator + worker loop.

The missing transport between :class:`~repro.exec.executor.SweepExecutor`
and a fleet of hosts.  Everything that makes single-box execution
deterministic and resumable already lives below this module — JSON-able
:class:`~repro.exec.seeds.SeedStreamSpec` stream derivation,
content-addressed :class:`~repro.exec.store.ResultStore` records, and
claim/heartbeat/steal :class:`~repro.exec.leases.LeaseTable` ownership —
so the transport only has to carry the existing unit lifecycle over HTTP:

* the **coordinator** (one per sweep, embedded in the executor under
  ``dispatch="remote"``) owns the store directory and serves worker
  registration, lease claims over the pending units, unit payload fetches,
  record pushes and heartbeats, plus a Prometheus ``/metrics`` scrape of
  the run's registries;
* a **worker** (``repro worker --coordinator URL``, or :func:`run_worker`
  in-process) loops claim → fetch → :func:`~repro.exec.executor.execute_unit`
  → push until the coordinator says the sweep is done.

Determinism is inherited, not re-implemented: a worker rebuilds exactly the
unit the coordinator decomposed (:mod:`repro.exec.protocol` round-trip),
derives exactly the trial streams the inline path would, and the executor
merges records in unit order — so any worker topology produces bit-for-bit
the ``--jobs 1`` result.  Fault handling is inherited too: each worker gets
its own :class:`LeaseTable` view (same directory, its own owner id), so a
dead worker's leases expire and are *stolen* through the ordinary claim
path, and a double-run after a steal pushes a byte-equal record the
coordinator accepts idempotently.

Throughput (PR 10): the coordinator also serves the **batched v2 API** —
``POST /api/v2/claim`` hands out up to ``max_units`` leases with unit
payloads inlined (no separate fetch round-trip) and ``POST /api/v2/push``
accepts a batch of records validated independently per unit (per-unit
stored/duplicate/rejected acks, stored entries group-committed through
:meth:`~repro.exec.store.ResultStore.put_many`).  The v1 single-unit
endpoints stay served unchanged, and the register handshake negotiates
``min(worker, coordinator)`` so old and new peers interoperate either way.
Workers ride a persistent keep-alive connection
(:class:`~repro.exec.transport.CoordinatorClient`) and back off
exponentially while idle.

Everything here is stdlib-only (``http.server`` / ``http.client``); no
new runtime dependencies.

Security: the coordinator implements **no authentication, authorization or
transport encryption**.  Any peer that can reach the socket can claim
units and push records.  Bind it to loopback or a trusted private network
only — never to an internet-facing interface.  See ``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import gzip
import json
import os
import queue
import shutil
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional, Sequence, Union

from repro.exec.executor import execute_unit
from repro.exec.faults import TransportFaultPlan
from repro.exec.leases import DEFAULT_LEASE_TTL, LeaseTable
from repro.exec.protocol import (
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BATCH,
    SUPPORTED_PROTOCOL_VERSIONS,
    ClaimBatchRequest,
    ClaimBatchResponse,
    ClaimRequest,
    ClaimResponse,
    FailureReport,
    HeartbeatRequest,
    LeaseGrant,
    ProtocolError,
    PushAck,
    PushBatchRequest,
    PushBatchResponse,
    PushEntry,
    PushRequest,
    PushResponse,
    RegisterRequest,
    RegisterResponse,
    canonical_json,
    decode_unit,
    encode_unit,
)
from repro.exec.store import ResultStore, fingerprints_match
from repro.exec.transport import GZIP_THRESHOLD, CoordinatorClient
from repro.exec.units import WorkUnit, record_matches_unit
from repro.obs.metrics import MetricsRegistry, render_registries
from repro.obs.progress import emit_progress

#: Deterministic worker-side failures tolerated per unit before the
#: coordinator declares the unit dead and the sweep fails loudly.
DEFAULT_MAX_UNIT_FAILURES = 5

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _parse_listen(listen: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (port 0 asks the OS for one)."""
    host, sep, port_text = listen.rpartition(":")
    if not sep or not host:
        raise ValueError(f"listen address must be 'host:port', got {listen!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"invalid listen port in {listen!r}") from exc
    return host, port


# --------------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------------- #
@dataclass
class _PendingUnit:
    """One submitted unit awaiting a worker's record."""

    unit: WorkUnit
    fingerprint: dict[str, Any]
    document: dict[str, Any]
    callbacks: list[Callable[[dict[str, Any]], None]] = field(default_factory=list)


class _CoordinatorServer(ThreadingHTTPServer):
    """The embedded HTTP server; one handler thread per request."""

    daemon_threads = True
    allow_reuse_address = True
    coordinator: "Coordinator"


class Coordinator:
    """HTTP side of remote dispatch: owns the store, serves the unit lifecycle.

    Parameters
    ----------
    store:
        The :class:`ResultStore` (or its directory) every pushed record is
        verified against and persisted into.  Leases live in
        ``<store>/leases`` — the same table layout single-box executors
        share, so remote workers and local executors interoperate.
    lease_ttl:
        Seconds a claimed unit may go without a heartbeat before its lease
        counts as expired and another worker may steal it.
    listen:
        ``"host:port"`` bind address; port ``0`` picks a free port (read
        the result back from :attr:`address`).  Loopback by default — see
        the module security note.
    extra_registries:
        Additional :class:`MetricsRegistry` instances merged into the
        ``/metrics`` exposition (the executor passes its own registry and
        the process-global one, so one scrape shows the whole run).
    poll_interval:
        Idle-claim retry hint handed to workers (default: derived from the
        TTL).
    max_unit_failures:
        Worker-reported failures tolerated per unit before the unit is
        declared dead and :meth:`wait` raises.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, os.PathLike],
        lease_ttl: float = DEFAULT_LEASE_TTL,
        listen: str = "127.0.0.1:0",
        extra_registries: Sequence[MetricsRegistry] = (),
        poll_interval: Optional[float] = None,
        max_unit_failures: int = DEFAULT_MAX_UNIT_FAILURES,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_unit_failures < 1:
            raise ValueError(f"max_unit_failures must be >= 1, got {max_unit_failures}")
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = (
            float(poll_interval)
            if poll_interval is not None
            else min(max(self.lease_ttl / 20.0, 0.05), 1.0)
        )
        self.max_unit_failures = int(max_unit_failures)
        self.extra_registries = tuple(extra_registries)
        self._lease_directory = self.store.directory / "leases"

        self._condition = threading.Condition()
        self._pending: dict[str, _PendingUnit] = {}
        #: key -> canonical record bytes of a batch push whose group commit
        #: is in flight (written outside the condition, so claims and other
        #: pushes are not stalled behind the batch's fsyncs).
        self._committing: dict[str, str] = {}
        #: key -> (worker, monotonic grant time) of an unresolved grant.  The
        #: map serves two purposes on the claim path.  First, a pipelined
        #: worker claims its next batch while the current one is still
        #: executing; without the map the lease table would happily re-grant
        #: the worker its *own* in-flight units (re-claiming an owned lease
        #: is legal — it is how a restarted worker recovers) and every batch
        #: would be executed twice.  Second, probing another live worker's
        #: lease costs file operations (temp write + link + stat) under the
        #: coordinator lock; the map answers "granted and fresh" from memory,
        #: so a claim scan past N in-flight units is N dict lookups, not N
        #: disk probes.  A grant older than the lease TTL is *not* trusted —
        #: the scan falls through to the lease table, whose heartbeat-backed
        #: expiry decides whether the unit is genuinely stealable.  Entries
        #: clear on push, failure, rejection, and (re-)registration.
        self._granted: dict[str, tuple[str, float]] = {}
        self._completed: set[str] = set()
        self._failed: dict[str, str] = {}
        self._failures: dict[str, int] = {}
        self._tables: dict[str, LeaseTable] = {}
        self._active_workers: set[str] = set()
        self._finished = False
        self._closed = False

        # Transport counters, created eagerly so a /metrics scrape shows the
        # full repro_remote_* family (at zero) before any traffic arrives.
        self.registry = MetricsRegistry()
        reg = self.registry
        self._workers_total = reg.counter(
            "repro_remote_workers_total", help="Workers that registered with the coordinator."
        )
        self._claims_total = reg.counter(
            "repro_remote_claims_total", help="Unit leases handed to workers."
        )
        self._idle_polls_total = reg.counter(
            "repro_remote_idle_polls_total", help="Claim polls answered with no claimable unit."
        )
        self._unit_fetches_total = reg.counter(
            "repro_remote_unit_fetches_total", help="Unit payload documents served."
        )
        self._heartbeats_total = reg.counter(
            "repro_remote_heartbeats_total", help="Worker heartbeat requests processed."
        )
        self._pushes_total = reg.counter(
            "repro_remote_pushes_total", help="Record pushes accepted and stored."
        )
        self._duplicate_pushes_total = reg.counter(
            "repro_remote_duplicate_pushes_total",
            help="Byte-equal re-pushes of already-stored records (accepted idempotently).",
        )
        self._rejected_pushes_total = reg.counter(
            "repro_remote_rejected_pushes_total",
            help="Pushes rejected (bad fingerprint, corrupt record) and quarantined.",
        )
        self._lease_steals_total = reg.counter(
            "repro_remote_lease_steals_total",
            help="Expired leases stolen from a dead worker through the claim path.",
        )
        self._unit_failures_total = reg.counter(
            "repro_remote_unit_failures_total", help="Worker-reported unit execution failures."
        )
        self._units_completed_total = reg.counter(
            "repro_remote_units_completed_total", help="Units completed via a worker push."
        )
        self._units_pending = reg.gauge(
            "repro_remote_units_pending", help="Units submitted and not yet completed."
        )
        batch_buckets = (1, 2, 4, 8, 16, 32, 64, 128)
        self._claim_batch_size = reg.histogram(
            "repro_remote_batch_size",
            help="Units per batched v2 request, by operation.",
            labels={"op": "claim"},
            buckets=batch_buckets,
        )
        self._push_batch_size = reg.histogram(
            "repro_remote_batch_size",
            help="Units per batched v2 request, by operation.",
            labels={"op": "push"},
            buckets=batch_buckets,
        )

        #: Handshake versions this coordinator accepts.  Tests shrink this to
        #: ``(1,)`` to emulate a pre-batch coordinator and exercise the
        #: worker's version-fallback path.
        self.supported_versions: tuple[int, ...] = SUPPORTED_PROTOCOL_VERSIONS

        host, port = _parse_listen(listen)
        self._server = _CoordinatorServer((host, port), _CoordinatorHandler)
        self._server.coordinator = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-coordinator",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> str:
        """Base URL workers connect to (bound host and the actual port)."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    # -- executor-facing API ------------------------------------------------- #
    def submit(
        self,
        unit: WorkUnit,
        key: str,
        fingerprint: dict[str, Any],
        on_record: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> None:
        """Queue ``unit`` for workers; ``on_record`` fires once it completes.

        Raises :class:`ProtocolError` if the unit cannot cross the wire
        (check with :func:`~repro.exec.protocol.unit_is_remotable` first).
        """
        document = encode_unit(unit)
        with self._condition:
            if self._closed:
                raise RuntimeError("coordinator is closed")
            if key in self._completed:
                # Completed since the caller's store check: serve from disk.
                record = self._raw_stored_record(key)
                if record is not None:
                    if on_record is not None:
                        on_record(record)
                    return
                self._completed.discard(key)
            entry = self._pending.get(key)
            if entry is None:
                entry = _PendingUnit(unit=unit, fingerprint=fingerprint, document=document)
                self._pending[key] = entry
                self._units_pending.set(len(self._pending))
            if on_record is not None:
                entry.callbacks.append(on_record)
            self._condition.notify_all()

    def wait(self, keys: Sequence[str], timeout: Optional[float] = None) -> None:
        """Block until every key completes; raise if any unit was declared dead."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                failed = [key for key in keys if key in self._failed]
                if failed:
                    details = "; ".join(
                        f"{key}: {self._failed[key]}" for key in failed[:3]
                    )
                    raise RuntimeError(
                        f"{len(failed)} remote unit(s) failed "
                        f"{self.max_unit_failures} times and were declared dead "
                        f"({details})"
                    )
                if all(key in self._completed for key in keys):
                    return
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"remote units not completed within {timeout}s"
                        )
                self._condition.wait(timeout=remaining if remaining is not None else 1.0)

    def finish(self) -> None:
        """Declare that no more units will be submitted.

        Workers polling an empty queue are answered ``"done"`` (and exit)
        only after this — between batches of one sweep they are told
        ``"idle"`` and keep polling.
        """
        with self._condition:
            self._finished = True
            self._condition.notify_all()

    def close(self, linger: float = 2.0) -> None:
        """Finish, give workers up to ``linger`` seconds to hear "done", stop.

        The linger loop polls the active-worker set, so it normally returns
        in one or two poll intervals; a worker that died mid-run simply
        times the linger out.  Idempotent.
        """
        with self._condition:
            if self._closed:
                return
            self._finished = True
            self._closed = True
            self._condition.notify_all()
        deadline = time.monotonic() + max(0.0, linger)
        while time.monotonic() < deadline:
            with self._condition:
                if not self._active_workers:
                    break
            time.sleep(0.05)
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def render_metrics(self) -> str:
        """The ``/metrics`` document: this registry merged with the extras."""
        return render_registries(self.registry, *self.extra_registries)

    # -- worker-facing operations (called from handler threads) -------------- #
    def register(self, request: RegisterRequest) -> RegisterResponse:
        if request.version not in self.supported_versions:
            supported = ", ".join(f"v{v}" for v in self.supported_versions)
            raise ProtocolError(
                f"protocol version mismatch: worker speaks v{request.version}, "
                f"coordinator supports {supported}"
            )
        with self._condition:
            if request.worker not in self._tables:
                self._tables[request.worker] = LeaseTable(
                    self._lease_directory, ttl=self.lease_ttl, owner=request.worker
                )
                self._workers_total.inc()
                emit_progress("worker_registered", worker=request.worker, host=request.host)
            else:
                # A re-registration is a restarted worker: whatever its
                # previous life had claimed is no longer in flight, and it
                # must be able to re-claim its own (still-held) leases.
                for key, (holder, _) in list(self._granted.items()):
                    if holder == request.worker:
                        del self._granted[key]
            self._active_workers.add(request.worker)
        return RegisterResponse(
            worker=request.worker,
            lease_ttl=self.lease_ttl,
            poll_interval=self.poll_interval,
            protocol=min(request.version, PROTOCOL_VERSION_BATCH),
        )

    def _grant_is_fresh(self, key: str, worker: str, now: float) -> bool:
        """Whether ``key`` has an in-flight grant a claim by ``worker`` must skip.

        The worker's own grants are always skipped (a pipelined claim must
        never re-receive units it is still executing).  Another worker's
        grant is skipped only while younger than the lease TTL; past that
        the claim falls through to the lease table, whose heartbeat-backed
        expiry decides whether the unit is genuinely stealable.
        """
        grant = self._granted.get(key)
        if grant is None:
            return False
        holder, granted_at = grant
        if holder == worker:
            return True
        return (now - granted_at) <= self.lease_ttl

    def _table_for(self, worker: str) -> LeaseTable:
        table = self._tables.get(worker)
        if table is None:
            raise ProtocolError(f"unknown worker {worker!r} (register first)")
        return table

    def claim(self, request: ClaimRequest) -> ClaimResponse:
        with self._condition:
            table = self._table_for(request.worker)
            now = time.monotonic()
            for key, entry in list(self._pending.items()):
                if self._grant_is_fresh(key, request.worker, now):
                    continue
                steals_before = table.stats.steals
                if not table.claim(key):
                    continue
                if table.stats.steals > steals_before:
                    self._lease_steals_total.inc()
                    emit_progress("remote_lease_stolen", key=key, worker=request.worker)
                self._claims_total.inc()
                self._granted[key] = (request.worker, now)
                return ClaimResponse(
                    status="unit",
                    key=key,
                    fingerprint=entry.fingerprint,
                    retry_after=self.poll_interval,
                )
            if self._finished and not self._pending:
                self._active_workers.discard(request.worker)
                self._condition.notify_all()
                return ClaimResponse(status="done")
            self._idle_polls_total.inc()
            return ClaimResponse(status="idle", retry_after=self.poll_interval)

    def claim_batch(self, request: ClaimBatchRequest) -> ClaimBatchResponse:
        """Lease up to ``max_units`` pending units, unit payloads inlined.

        One request replaces up to ``max_units`` claim + unit-fetch
        round-trip pairs of the v1 API; lease, steal and idle/done
        semantics are identical to :meth:`claim` applied repeatedly.
        """
        with self._condition:
            table = self._table_for(request.worker)
            now = time.monotonic()
            # Phase 1: pick candidates with in-memory checks only, then take
            # their lease files in one claim_many sweep — a single payload
            # write for the whole batch instead of one per key.
            candidates: list[tuple[str, _PendingUnit]] = []
            for key, entry in self._pending.items():
                if len(candidates) >= request.max_units:
                    break
                if self._grant_is_fresh(key, request.worker, now):
                    continue
                candidates.append((key, entry))
            steals_before = table.stats.steals
            won = set(table.claim_many([key for key, _ in candidates]))
            stolen = table.stats.steals - steals_before
            if stolen:
                self._lease_steals_total.inc(stolen)
                emit_progress(
                    "remote_lease_stolen", count=stolen, worker=request.worker
                )
            leases: list[LeaseGrant] = []
            for key, entry in candidates:
                if key not in won:
                    continue
                self._claims_total.inc()
                self._unit_fetches_total.inc()
                self._granted[key] = (request.worker, now)
                leases.append(
                    LeaseGrant(key=key, fingerprint=entry.fingerprint, unit=entry.document)
                )
            if leases:
                self._claim_batch_size.observe(len(leases))
                return ClaimBatchResponse(
                    status="units", leases=tuple(leases), retry_after=self.poll_interval
                )
            if self._finished and not self._pending:
                self._active_workers.discard(request.worker)
                self._condition.notify_all()
                return ClaimBatchResponse(status="done")
            self._idle_polls_total.inc()
            return ClaimBatchResponse(status="idle", retry_after=self.poll_interval)

    def unit_document(self, key: str) -> Optional[dict[str, Any]]:
        with self._condition:
            entry = self._pending.get(key)
            if entry is None:
                return None
            self._unit_fetches_total.inc()
            return entry.document

    def heartbeat(self, request: HeartbeatRequest) -> None:
        with self._condition:
            table = self._table_for(request.worker)
            self._heartbeats_total.inc()
        # Touching lease mtimes needs no coordinator state; the table only
        # refreshes leases this worker actually owns.
        table.heartbeat(request.keys)

    def fail(self, request: FailureReport) -> None:
        with self._condition:
            table = self._table_for(request.worker)
            self._unit_failures_total.inc()
            emit_progress(
                "remote_unit_failed",
                key=request.key,
                worker=request.worker,
                error=request.error,
            )
            table.release(request.key)
            grant = self._granted.get(request.key)
            if grant is not None and grant[0] == request.worker:
                del self._granted[request.key]
            if request.key not in self._pending:
                return
            self._failures[request.key] = self._failures.get(request.key, 0) + 1
            if self._failures[request.key] >= self.max_unit_failures:
                self._failed[request.key] = request.error or "unit execution failed"
                self._pending.pop(request.key, None)
                self._units_pending.set(len(self._pending))
                self._condition.notify_all()

    def push(self, request: PushRequest) -> tuple[int, dict[str, Any]]:
        """Verify and store a pushed record; returns ``(status, body)``."""
        with self._condition:
            table = self._table_for(request.worker)
            verdict, error = self._evaluate_push(
                request.worker, request.key, request.fingerprint, request.record
            )
            if verdict == "duplicate":
                return 200, PushResponse(status="duplicate").as_json()
            if verdict == "unknown":
                return 404, {"error": error}
            if verdict == "rejected":
                return 409, {"error": error}
            entry = self._pending.pop(request.key)
            self.store.put(request.key, request.record, fingerprint=entry.fingerprint)
            self._finalize_stored(
                request.worker, table, request.key, request.record, entry
            )
            self._condition.notify_all()
            return 200, PushResponse(status="stored").as_json()

    def push_batch(self, request: PushBatchRequest) -> tuple[int, dict[str, Any]]:
        """Validate a batch of pushed records independently; group-commit the good ones.

        Every entry gets its own :class:`~repro.exec.protocol.PushAck` —
        one corrupt record is quarantined and acknowledged ``"rejected"``
        without poisoning its batch-mates.  All accepted records are
        persisted through a single :meth:`ResultStore.put_many` group
        commit (one directory fsync for the whole batch), issued *outside*
        the coordinator lock so concurrent claims and pushes are not
        stalled behind the batch's fsyncs.  While the commit is in flight
        the affected units are parked in a committing set: a concurrent
        re-push of the same bytes (a lease steal racing the original
        owner) is answered ``"duplicate"``, conflicting bytes
        ``"rejected"`` — exactly the answers an already-completed unit
        gives.
        """
        with self._condition:
            table = self._table_for(request.worker)
            self._push_batch_size.observe(len(request.entries))
            acks: list[PushAck] = []
            stored: list[tuple[PushEntry, _PendingUnit]] = []
            seen: dict[str, str] = {}
            for entry in request.entries:
                if entry.key in seen:
                    # A within-batch repeat: byte-equal is the idempotent
                    # duplicate; conflicting bytes are a corrupt sibling.
                    if canonical_json(entry.record) == seen[entry.key]:
                        self._duplicate_pushes_total.inc()
                        acks.append(PushAck(key=entry.key, status="duplicate"))
                    else:
                        self._quarantine_record(
                            request.worker, entry.key, entry.fingerprint, entry.record
                        )
                        acks.append(
                            PushAck(
                                key=entry.key,
                                status="rejected",
                                error=f"conflicting record for unit {entry.key} in batch",
                            )
                        )
                    continue
                verdict, error = self._evaluate_push(
                    request.worker, entry.key, entry.fingerprint, entry.record
                )
                if verdict == "store":
                    seen[entry.key] = canonical_json(entry.record)
                    self._committing[entry.key] = seen[entry.key]
                    stored.append((entry, self._pending.pop(entry.key)))
                    acks.append(PushAck(key=entry.key, status="stored"))
                elif verdict == "duplicate":
                    acks.append(PushAck(key=entry.key, status="duplicate"))
                else:  # "unknown" and "rejected" both ack rejected per-unit
                    acks.append(PushAck(key=entry.key, status="rejected", error=error))
            self._units_pending.set(len(self._pending))
        if stored:
            try:
                self.store.put_many(
                    [
                        (entry.key, entry.record, pending.fingerprint)
                        for entry, pending in stored
                    ]
                )
            except BaseException:
                # The group commit failed (disk full, store gone): the units
                # are not durable, so put them back on offer instead of
                # losing them.
                with self._condition:
                    for entry, pending in stored:
                        self._committing.pop(entry.key, None)
                        self._granted.pop(entry.key, None)
                        self._pending[entry.key] = pending
                    self._units_pending.set(len(self._pending))
                    self._condition.notify_all()
                raise
        with self._condition:
            for entry, pending in stored:
                self._committing.pop(entry.key, None)
                self._finalize_stored(
                    request.worker, table, entry.key, entry.record, pending
                )
            self._condition.notify_all()
        return 200, PushBatchResponse(acks=tuple(acks)).as_json()

    def _evaluate_push(
        self, worker: str, key: str, fingerprint: dict[str, Any], record: dict[str, Any]
    ) -> tuple[str, str]:
        """Classify one pushed record; callers hold ``self._condition``.

        Returns ``(verdict, error)`` with verdict one of ``"store"`` (valid
        and pending — caller persists then finalizes), ``"duplicate"``,
        ``"unknown"`` or ``"rejected"`` (already quarantined here).
        """
        entry = self._pending.get(key)
        if entry is None:
            committing = self._committing.get(key)
            if committing is not None:
                if canonical_json(record) == committing:
                    self._duplicate_pushes_total.inc()
                    return "duplicate", ""
                self._quarantine_record(worker, key, fingerprint, record)
                return "rejected", f"unit {key} already completed with different bytes"
            if key in self._completed:
                existing = self._raw_stored_record(key)
                if existing is not None and canonical_json(existing) == canonical_json(record):
                    self._duplicate_pushes_total.inc()
                    return "duplicate", ""
                self._quarantine_record(worker, key, fingerprint, record)
                return "rejected", f"unit {key} already completed with different bytes"
            return "unknown", f"unknown unit {key}"
        if not fingerprints_match(fingerprint, entry.fingerprint):
            self._reject_pending_push(worker, key, fingerprint, record)
            return "rejected", f"fingerprint mismatch for unit {key}"
        if not record_matches_unit(entry.unit, record):
            self._reject_pending_push(worker, key, fingerprint, record)
            return "rejected", (
                f"corrupt record for unit {key} (expected {entry.unit.n_trials} trials)"
            )
        return "store", ""

    def _reject_pending_push(
        self, worker: str, key: str, fingerprint: dict[str, Any], record: dict[str, Any]
    ) -> None:
        """Quarantine a rejected push whose unit stays pending (condition held).

        The rejecting worker will not push this unit again, so its
        in-flight grant is dropped — it (or, once the lease expires, any
        other worker) may immediately re-claim and re-execute the unit.
        """
        self._quarantine_record(worker, key, fingerprint, record)
        grant = self._granted.get(key)
        if grant is not None and grant[0] == worker:
            del self._granted[key]

    def _finalize_stored(
        self,
        worker: str,
        table: LeaseTable,
        key: str,
        record: dict[str, Any],
        entry: "_PendingUnit",
    ) -> None:
        """Post-persist bookkeeping for one stored push (condition held).

        ``entry`` is the unit's pending entry, already popped from
        ``self._pending`` by the caller (before the durable write).
        """
        table.release(key)
        self._granted.pop(key, None)
        self._completed.add(key)
        self._failures.pop(key, None)
        self._units_pending.set(len(self._pending))
        self._pushes_total.inc()
        self._units_completed_total.inc()
        emit_progress("unit_completed", unit=key, worker=worker)
        for callback in entry.callbacks:
            callback(record)

    def status_document(self) -> dict[str, Any]:
        with self._condition:
            return {
                "pending": len(self._pending),
                "completed": len(self._completed),
                "failed": dict(self._failed),
                "finished": self._finished,
                "workers": sorted(self._tables),
                "active_workers": sorted(self._active_workers),
            }

    # -- internals ----------------------------------------------------------- #
    def _raw_stored_record(self, key: str) -> Optional[dict[str, Any]]:
        """The stored record for ``key``, read without touching store stats.

        The store's ``get`` counts hits/misses that feed the *executor's*
        resume accounting; a duplicate-push byte comparison must not inflate
        those numbers.
        """
        try:
            with self.store.path_for(key).open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        record = document.get("record") if isinstance(document, dict) else None
        return record if isinstance(record, dict) else None

    def _quarantine_record(
        self, worker: str, key: str, fingerprint: dict[str, Any], record: dict[str, Any]
    ) -> None:
        """Keep a rejected push body on disk for forensics, off the store path.

        ``<key>.pushrejected-<ns>`` never matches the store's ``*.json``
        glob, so a rejected body can never satisfy a later lookup.
        """
        self._rejected_pushes_total.inc()
        emit_progress("remote_push_rejected", key=key, worker=worker)
        body = PushRequest(worker=worker, key=key, fingerprint=fingerprint, record=record)
        target = self.store.directory / f"{key}.pushrejected-{time.time_ns()}"
        try:
            target.write_text(canonical_json(body.as_json()) + "\n", encoding="utf-8")
        except (OSError, ProtocolError):
            pass


# --------------------------------------------------------------------------- #
# HTTP plumbing
# --------------------------------------------------------------------------- #
class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes the coordinator API; every response is canonical JSON."""

    protocol_version = "HTTP/1.1"
    # Keep-alive connections carry many small JSON exchanges; without
    # TCP_NODELAY each response can stall ~40 ms behind the peer's delayed
    # ACK (the client side sets the same option on its socket).
    disable_nagle_algorithm = True
    server: _CoordinatorServer

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging goes through emit_progress, not stderr

    def _send_json(self, status: int, document: dict[str, Any]) -> None:
        body = (canonical_json(document) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        accepts_gzip = "gzip" in self.headers.get("Accept-Encoding", "").lower()
        if accepts_gzip and len(body) >= GZIP_THRESHOLD:
            body = gzip.compress(body, compresslevel=1)
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ProtocolError("invalid Content-Length header") from exc
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise ProtocolError("request body is empty")
        if self.headers.get("Content-Encoding", "").lower() == "gzip":
            try:
                raw = gzip.decompress(raw)
            except (OSError, EOFError) as exc:
                raise ProtocolError(f"request body is not valid gzip: {exc}") from exc
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        coordinator = self.server.coordinator
        try:
            if self.path == "/metrics":
                self._send_text(200, coordinator.render_metrics(), METRICS_CONTENT_TYPE)
            elif self.path == "/api/status":
                self._send_json(200, coordinator.status_document())
            elif self.path.startswith("/api/unit/"):
                key = self.path[len("/api/unit/"):]
                document = coordinator.unit_document(key)
                if document is None:
                    self._send_json(404, {"error": f"unknown unit {key}"})
                else:
                    self._send_json(200, {"key": key, "unit": document})
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except BrokenPipeError:
            pass
        except Exception as exc:  # never let a handler thread die silently
            self._best_effort_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        coordinator = self.server.coordinator
        try:
            body = self._read_json_body()
            if self.path == "/api/register":
                response = coordinator.register(RegisterRequest.from_json(body))
                self._send_json(200, response.as_json())
            elif self.path == "/api/claim":
                response = coordinator.claim(ClaimRequest.from_json(body))
                self._send_json(200, response.as_json())
            elif self.path == "/api/heartbeat":
                coordinator.heartbeat(HeartbeatRequest.from_json(body))
                self._send_json(200, {"ok": True})
            elif self.path == "/api/push":
                status, document = coordinator.push(PushRequest.from_json(body))
                self._send_json(status, document)
            elif self.path == "/api/v2/claim":
                response = coordinator.claim_batch(ClaimBatchRequest.from_json(body))
                self._send_json(200, response.as_json())
            elif self.path == "/api/v2/push":
                status, document = coordinator.push_batch(PushBatchRequest.from_json(body))
                self._send_json(status, document)
            elif self.path == "/api/fail":
                coordinator.fail(FailureReport.from_json(body))
                self._send_json(200, {"ok": True})
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except ProtocolError as exc:
            try:
                self._send_json(400, {"error": str(exc)})
            except OSError:
                pass
        except BrokenPipeError:
            pass
        except Exception as exc:
            self._best_effort_error(exc)

    def _best_effort_error(self, exc: Exception) -> None:
        try:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        except OSError:
            pass


# --------------------------------------------------------------------------- #
# Worker loop
# --------------------------------------------------------------------------- #
@dataclass
class WorkerStats:
    """What one :func:`run_worker` loop did, for logs and assertions."""

    worker: str
    executed: int = 0
    pushed: int = 0
    duplicates: int = 0
    idle_polls: int = 0
    failures: int = 0

    def as_json(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "executed": self.executed,
            "pushed": self.pushed,
            "duplicates": self.duplicates,
            "idle_polls": self.idle_polls,
            "failures": self.failures,
        }

    def render(self) -> str:
        return (
            f"worker {self.worker}: executed {self.executed} units "
            f"({self.pushed} pushed, {self.duplicates} duplicates, "
            f"{self.idle_polls} idle polls, {self.failures} failures)"
        )


#: Consecutive connection failures after which a worker that has already
#: completed work treats the coordinator as gone and exits cleanly.
_CONNECTION_FAILURE_LIMIT = 20


def idle_backoff_delay(streak: int, base: float, cap: float = 2.0) -> float:
    """Sleep before the ``streak``-th consecutive idle claim poll.

    Doubles from ``base`` per empty poll and saturates at ``max(cap,
    base)`` (an explicit long poll interval is never shortened), so a fleet
    of idle workers stops hammering the coordinator near sweep completion.
    The caller resets the streak to zero on any successful claim.
    """
    if streak <= 1:
        return base
    return min(max(cap, base), base * (2.0 ** (streak - 1)))


class _Prefetch:
    """One pipelined v2 claim in flight on its own connection.

    Started right after a batch is received, so the next batch travels the
    wire while the current one executes; :meth:`take` joins and yields the
    response (or re-raises the transport failure) exactly as a synchronous
    claim would.
    """

    def __init__(self, client: CoordinatorClient, worker: str, max_units: int) -> None:
        self._result: Optional[tuple[int, dict[str, Any]]] = None
        self._error: Optional[OSError] = None

        def fetch() -> None:
            try:
                self._result = client.request(
                    "/api/v2/claim",
                    ClaimBatchRequest(worker=worker, max_units=max_units).as_json(),
                )
            except OSError as exc:
                self._error = exc

        self._thread = threading.Thread(
            target=fetch, name=f"{worker}-prefetch", daemon=True
        )
        self._thread.start()

    def take(self) -> tuple[int, dict[str, Any]]:
        self._thread.join()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


def run_worker(
    coordinator: str,
    worker_id: Optional[str] = None,
    poll: Optional[float] = None,
    max_units: Optional[int] = None,
    connect_timeout: float = 60.0,
    request_timeout: float = 30.0,
    transport_faults: Optional[TransportFaultPlan] = None,
    claim_batch: int = 1,
    push_batch: Optional[int] = None,
    protocol: Optional[int] = None,
    idle_cap: float = 2.0,
) -> WorkerStats:
    """Pull-execute-push units from ``coordinator`` until it says "done".

    The complete worker half of remote dispatch: register (retrying until
    ``connect_timeout`` if the coordinator is not up yet, and falling back
    to protocol v1 against a pre-batch coordinator), then loop
    claim → :func:`~repro.exec.executor.execute_unit` → push over one
    keep-alive connection, with a daemon heartbeat thread (its own
    connection) keeping every held lease alive.  Under the negotiated v2
    protocol the worker claims up to ``claim_batch`` units per request
    (unit payloads inlined), pushes records in batches of ``push_batch``
    (default: ``claim_batch``), and *pipelines* both directions — the next
    batch is claimed, and the previous batch's records pushed, on their own
    connections while the current batch executes.  Idle polls back
    off exponentially up to ``idle_cap`` seconds (see
    :func:`idle_backoff_delay`); an explicit ``poll`` beats the
    coordinator's idle ``retry_after`` hint, so a low-latency worker can be
    asked for 20 ms polling regardless of the server's default.

    A unit whose execution raises is reported via ``/api/fail`` (releasing
    the lease for an immediate retry elsewhere) and its batch-mates
    continue.  ``max_units`` bounds the work taken (for tests);
    ``transport_faults`` injects deterministic push-path faults (for the
    chaos suite); ``protocol`` forces a handshake version (for compat
    tests).
    """
    if claim_batch < 1:
        raise ValueError(f"claim_batch must be >= 1, got {claim_batch}")
    if push_batch is not None and push_batch < 1:
        raise ValueError(f"push_batch must be >= 1, got {push_batch}")
    worker = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    client = CoordinatorClient(coordinator, timeout=request_timeout)
    requested = PROTOCOL_VERSION_BATCH if protocol is None else int(protocol)
    terms = _register_with_retry(client, worker, connect_timeout, requested)
    interval = poll if poll is not None else max(terms.poll_interval, 0.01)
    stats = WorkerStats(worker=worker)

    held: set[str] = set()
    held_lock = threading.Lock()
    stop = threading.Event()
    heartbeat_interval = min(max(terms.lease_ttl / 4.0, 0.05), 15.0)
    heartbeat_client = client.clone()

    def heartbeat_loop() -> None:
        while not stop.wait(heartbeat_interval):
            with held_lock:
                keys = tuple(held)
            if not keys:
                continue
            try:
                heartbeat_client.request(
                    "/api/heartbeat", HeartbeatRequest(worker=worker, keys=keys).as_json()
                )
            except OSError:
                pass  # the claim loop owns connection-failure policy

    heartbeat_thread = threading.Thread(
        target=heartbeat_loop, name=f"{worker}-heartbeat", daemon=True
    )
    heartbeat_thread.start()

    # An explicitly requested poll interval beats the coordinator's
    # ``retry_after`` hint on idle claims — a bench or test that asks for
    # 20 ms polling must not be slept for the server's (1 s) default.
    honor_retry_hint = poll is None
    try:
        if terms.protocol >= PROTOCOL_VERSION_BATCH:
            _worker_loop_v2(
                client,
                worker,
                stats,
                interval,
                max_units,
                claim_batch,
                push_batch,
                transport_faults,
                held,
                held_lock,
                honor_retry_hint,
                idle_cap,
            )
        else:
            _worker_loop_v1(
                client,
                worker,
                stats,
                interval,
                max_units,
                transport_faults,
                held,
                held_lock,
                honor_retry_hint,
                idle_cap,
            )
    finally:
        stop.set()
        heartbeat_thread.join(timeout=2.0)
        heartbeat_client.close()
        client.close()
    return stats


def _worker_loop_v1(
    client: CoordinatorClient,
    worker: str,
    stats: WorkerStats,
    interval: float,
    max_units: Optional[int],
    transport_faults: Optional[TransportFaultPlan],
    held: set[str],
    held_lock: threading.Lock,
    honor_retry_hint: bool = True,
    idle_cap: float = 2.0,
) -> None:
    """The single-unit claim → fetch → execute → push loop (protocol v1)."""
    push_attempts: dict[str, int] = {}
    consecutive_failures = 0
    idle_streak = 0
    while True:
        if max_units is not None and stats.executed >= max_units:
            return
        try:
            status, body = client.request(
                "/api/claim", ClaimRequest(worker=worker).as_json()
            )
        except OSError:
            consecutive_failures += 1
            if consecutive_failures > _CONNECTION_FAILURE_LIMIT:
                if stats.executed or stats.idle_polls:
                    return  # the coordinator went away after we served it
                raise
            time.sleep(interval)
            continue
        consecutive_failures = 0
        if status != 200:
            raise RuntimeError(f"claim rejected ({status}): {body.get('error', body)}")
        claim = ClaimResponse.from_json(body)
        if claim.status == "done":
            return
        if claim.status == "idle":
            stats.idle_polls += 1
            idle_streak += 1
            base = (
                claim.retry_after
                if honor_retry_hint and claim.retry_after > 0
                else interval
            )
            time.sleep(idle_backoff_delay(idle_streak, base, cap=idle_cap))
            continue
        idle_streak = 0
        assert claim.key is not None and claim.fingerprint is not None
        status, body = client.request(f"/api/unit/{claim.key}")
        if status != 200:
            continue  # completed or stolen between claim and fetch
        unit = decode_unit(body.get("unit"))
        with held_lock:
            held.add(claim.key)
        try:
            record = execute_unit(unit)
        except Exception as exc:
            stats.failures += 1
            with held_lock:
                held.discard(claim.key)
            try:
                client.request(
                    "/api/fail",
                    FailureReport(
                        worker=worker,
                        key=claim.key,
                        error=f"{type(exc).__name__}: {exc}",
                    ).as_json(),
                )
            except OSError:
                pass
            continue
        stats.executed += 1
        try:
            _push_with_faults(
                client,
                PushRequest(
                    worker=worker,
                    key=claim.key,
                    fingerprint=claim.fingerprint,
                    record=record,
                ),
                transport_faults,
                push_attempts,
                stats,
            )
        finally:
            with held_lock:
                held.discard(claim.key)


def _worker_loop_v2(
    client: CoordinatorClient,
    worker: str,
    stats: WorkerStats,
    interval: float,
    max_units: Optional[int],
    claim_batch: int,
    push_batch: Optional[int],
    transport_faults: Optional[TransportFaultPlan],
    held: set[str],
    held_lock: threading.Lock,
    honor_retry_hint: bool = True,
    idle_cap: float = 2.0,
) -> None:
    """The batched, pipelined claim → execute → push loop (protocol v2)."""
    push_attempts: dict[str, int] = {}
    buffer: list[PushEntry] = []
    flush_at = push_batch if push_batch is not None else claim_batch
    consecutive_failures = 0
    idle_streak = 0
    prefetch: Optional[_Prefetch] = None
    # Pipelining claims ahead only makes sense for an unbounded worker
    # pulling real batches; a max_units test budget claims exactly on demand.
    prefetch_client = client.clone() if max_units is None and claim_batch > 1 else None

    # Pushes are pipelined too: completed batches queue to a dedicated pusher
    # thread with its own connection, so the execute loop never waits out a
    # push round trip — the cycle costs max(execute, push) even when several
    # pushes are outstanding.  One thread draining a FIFO queue over one
    # connection means pushes can never reorder; the queue is bounded so a
    # slow coordinator backpressures execution instead of buffering results
    # without limit.  A push failure parks in ``push_failures`` and re-raises
    # on the worker thread at the next flush (or the final drain).
    # Fault-injection runs stay synchronous — the chaos suite asserts on
    # strict request ordering.
    push_client = (
        client.clone()
        if prefetch_client is not None and transport_faults is None
        else None
    )
    push_queue: Optional[queue.Queue] = (
        queue.Queue(maxsize=4) if push_client is not None else None
    )
    pusher: Optional[threading.Thread] = None
    push_failures: list[BaseException] = []

    def pusher_main() -> None:
        assert push_queue is not None and push_client is not None
        while True:
            entries = push_queue.get()
            if entries is None:
                push_queue.task_done()
                return
            try:
                # After a failure the loop only drains (releasing held keys);
                # the worker thread re-raises at its next flush.
                if not push_failures:
                    _push_batch_with_faults(
                        push_client, worker, entries, transport_faults, push_attempts, stats
                    )
            except BaseException as exc:  # re-raised on the worker thread
                push_failures.append(exc)
            finally:
                with held_lock:
                    for entry in entries:
                        held.discard(entry.key)
                push_queue.task_done()

    def drain() -> None:
        """Wait for every queued push to finish; surface any push failure."""
        if push_queue is not None:
            push_queue.join()
        if push_failures:
            raise push_failures.pop()

    def flush() -> None:
        nonlocal pusher
        if not buffer:
            return
        entries = tuple(buffer)
        buffer.clear()
        if push_queue is None:
            try:
                _push_batch_with_faults(
                    client, worker, entries, transport_faults, push_attempts, stats
                )
            finally:
                with held_lock:
                    for entry in entries:
                        held.discard(entry.key)
            return
        if push_failures:
            raise push_failures.pop()
        if pusher is None:
            pusher = threading.Thread(
                target=pusher_main, name=f"{worker}-push", daemon=True
            )
            pusher.start()
        push_queue.put(entries)

    try:
        while True:
            remaining = None if max_units is None else max_units - stats.executed
            if remaining is not None and remaining <= 0:
                flush()
                drain()
                return
            want = claim_batch if remaining is None else min(claim_batch, remaining)
            try:
                if prefetch is not None:
                    status, body = prefetch.take()
                else:
                    status, body = client.request(
                        "/api/v2/claim",
                        ClaimBatchRequest(worker=worker, max_units=want).as_json(),
                    )
            except OSError:
                prefetch = None
                consecutive_failures += 1
                if consecutive_failures > _CONNECTION_FAILURE_LIMIT:
                    if stats.executed or stats.idle_polls:
                        return  # the coordinator went away after we served it
                    raise
                time.sleep(interval)
                continue
            prefetch = None
            consecutive_failures = 0
            if status != 200:
                raise RuntimeError(f"claim rejected ({status}): {body.get('error', body)}")
            claim = ClaimBatchResponse.from_json(body)
            if claim.status == "done":
                flush()
                drain()
                return
            if claim.status == "idle":
                flush()  # push held results before sleeping on them
                stats.idle_polls += 1
                idle_streak += 1
                base = (
                    claim.retry_after
                    if honor_retry_hint and claim.retry_after > 0
                    else interval
                )
                time.sleep(idle_backoff_delay(idle_streak, base, cap=idle_cap))
                continue
            idle_streak = 0
            with held_lock:
                held.update(lease.key for lease in claim.leases)
            if prefetch_client is not None:
                prefetch = _Prefetch(prefetch_client, worker, claim_batch)
            for lease in claim.leases:
                try:
                    record = execute_unit(decode_unit(lease.unit))
                except Exception as exc:
                    stats.failures += 1
                    with held_lock:
                        held.discard(lease.key)
                    try:
                        client.request(
                            "/api/fail",
                            FailureReport(
                                worker=worker,
                                key=lease.key,
                                error=f"{type(exc).__name__}: {exc}",
                            ).as_json(),
                        )
                    except OSError:
                        pass
                    continue
                stats.executed += 1
                buffer.append(
                    PushEntry(key=lease.key, fingerprint=lease.fingerprint, record=record)
                )
                if len(buffer) >= flush_at:
                    flush()
            flush()
    finally:
        if pusher is not None and push_queue is not None:
            # Sentinel after any queued batches: never abandon a pending push.
            push_queue.put(None)
            pusher.join()
        if push_client is not None:
            push_client.close()
        if prefetch is None and prefetch_client is not None:
            # An in-flight prefetch still owns the connection; closing here
            # would block on its lock, so leave it to the daemon thread.
            prefetch_client.close()


def _register_with_retry(
    client: CoordinatorClient,
    worker: str,
    connect_timeout: float,
    version: int = PROTOCOL_VERSION_BATCH,
) -> RegisterResponse:
    """Register, retrying connection failures until the deadline passes.

    A 400 "version mismatch" answer from a pre-batch coordinator downgrades
    the handshake to v1 and retries, so a new worker keeps serving an old
    coordinator over the single-unit endpoints.
    """
    deadline = time.monotonic() + connect_timeout
    while True:
        request = RegisterRequest(
            worker=worker, pid=os.getpid(), host=socket.gethostname(), version=version
        )
        try:
            status, body = client.request("/api/register", request.as_json())
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
            continue
        if (
            status == 400
            and version != PROTOCOL_VERSION
            and "version mismatch" in str(body.get("error", ""))
        ):
            version = PROTOCOL_VERSION
            continue
        if status != 200:
            raise RuntimeError(
                f"registration rejected ({status}): {body.get('error', body)}"
            )
        return RegisterResponse.from_json(body)


def _push_batch_with_faults(
    client: CoordinatorClient,
    worker: str,
    entries: Sequence[PushEntry],
    plan: Optional[TransportFaultPlan],
    attempts: dict[str, int],
    stats: WorkerStats,
) -> None:
    """Push a batch of records, applying scheduled transport faults, until acked.

    Fault semantics mirror :func:`_push_with_faults`, aggregated per batch:
    an entry scheduled ``"slow"`` sleeps once before the push, a
    ``"dup_push"`` sends one extra batch push first, and a ``"drop"``
    discards the response and re-pushes the whole batch (the coordinator
    answers the repeats ``"duplicate"``).  A ``"rejected"`` ack raises
    *after* the sibling acks are counted — one bad record never un-stores
    its batch-mates.
    """
    connection_failures = 0
    while True:
        faults: list[Optional[str]] = []
        for entry in entries:
            submission = attempts.get(entry.key, 0)
            attempts[entry.key] = submission + 1
            faults.append(plan.fault_for(entry.key, submission) if plan is not None else None)
        document = PushBatchRequest(worker=worker, entries=tuple(entries)).as_json()
        if plan is not None and "slow" in faults:
            time.sleep(plan.slow_seconds)
        if "dup_push" in faults:
            try:
                client.request("/api/v2/push", document)
            except OSError:
                pass  # the authoritative push below carries the retry logic
        try:
            status, body = client.request("/api/v2/push", document)
        except OSError:
            connection_failures += 1
            if connection_failures > _CONNECTION_FAILURE_LIMIT:
                raise
            time.sleep(0.2)
            continue
        if "drop" in faults:
            continue  # response "lost": push again, expect duplicate acks
        if status != 200:
            raise RuntimeError(f"push rejected ({status}): {body.get('error', body)}")
        response = PushBatchResponse.from_json(body)
        rejected = []
        for ack in response.acks:
            if ack.status == "rejected":
                rejected.append(ack)
                continue
            stats.pushed += 1
            if ack.status == "duplicate":
                stats.duplicates += 1
        if rejected:
            details = "; ".join(f"{ack.key}: {ack.error}" for ack in rejected[:3])
            raise RuntimeError(
                f"{len(rejected)} record(s) rejected in batch push ({details})"
            )
        return


def _push_with_faults(
    client: CoordinatorClient,
    push: PushRequest,
    plan: Optional[TransportFaultPlan],
    attempts: dict[str, int],
    stats: WorkerStats,
) -> None:
    """Push a record, applying any scheduled transport faults, until acked.

    ``"slow"`` sleeps before the push (long enough, under a short TTL, for
    the lease to be stolen); ``"drop"`` performs the push but discards the
    response and retries (the coordinator answers the retry "duplicate");
    ``"dup_push"`` sends an extra push first.  Every path ends with an
    acknowledged ``stored`` or ``duplicate``.
    """
    document = push.as_json()
    connection_failures = 0
    while True:
        submission = attempts.get(push.key, 0)
        attempts[push.key] = submission + 1
        fault = plan.fault_for(push.key, submission) if plan is not None else None
        if fault == "slow" and plan is not None:
            time.sleep(plan.slow_seconds)
        if fault == "dup_push":
            try:
                client.request("/api/push", document)
            except OSError:
                pass  # the authoritative push below carries the retry logic
        try:
            status, body = client.request("/api/push", document)
        except OSError:
            connection_failures += 1
            if connection_failures > _CONNECTION_FAILURE_LIMIT:
                raise
            time.sleep(0.2)
            continue
        if fault == "drop":
            continue  # response "lost": push again, expect a duplicate ack
        if status == 200:
            response = PushResponse.from_json(body)
            stats.pushed += 1
            if response.status == "duplicate":
                stats.duplicates += 1
            return
        raise RuntimeError(f"push rejected ({status}): {body.get('error', body)}")


def cleanup_store_directory(path: Union[str, os.PathLike]) -> None:
    """Remove a temporary coordinator-owned store directory (best effort)."""
    shutil.rmtree(path, ignore_errors=True)
