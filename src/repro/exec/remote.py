"""Multi-host sweep execution: HTTP coordinator + worker loop.

The missing transport between :class:`~repro.exec.executor.SweepExecutor`
and a fleet of hosts.  Everything that makes single-box execution
deterministic and resumable already lives below this module — JSON-able
:class:`~repro.exec.seeds.SeedStreamSpec` stream derivation,
content-addressed :class:`~repro.exec.store.ResultStore` records, and
claim/heartbeat/steal :class:`~repro.exec.leases.LeaseTable` ownership —
so the transport only has to carry the existing unit lifecycle over HTTP:

* the **coordinator** (one per sweep, embedded in the executor under
  ``dispatch="remote"``) owns the store directory and serves worker
  registration, lease claims over the pending units, unit payload fetches,
  record pushes and heartbeats, plus a Prometheus ``/metrics`` scrape of
  the run's registries;
* a **worker** (``repro worker --coordinator URL``, or :func:`run_worker`
  in-process) loops claim → fetch → :func:`~repro.exec.executor.execute_unit`
  → push until the coordinator says the sweep is done.

Determinism is inherited, not re-implemented: a worker rebuilds exactly the
unit the coordinator decomposed (:mod:`repro.exec.protocol` round-trip),
derives exactly the trial streams the inline path would, and the executor
merges records in unit order — so any worker topology produces bit-for-bit
the ``--jobs 1`` result.  Fault handling is inherited too: each worker gets
its own :class:`LeaseTable` view (same directory, its own owner id), so a
dead worker's leases expire and are *stolen* through the ordinary claim
path, and a double-run after a steal pushes a byte-equal record the
coordinator accepts idempotently.

Everything here is stdlib-only (``http.server`` / ``urllib.request``); no
new runtime dependencies.

Security: the coordinator implements **no authentication, authorization or
transport encryption**.  Any peer that can reach the socket can claim
units and push records.  Bind it to loopback or a trusted private network
only — never to an internet-facing interface.  See ``docs/DISTRIBUTED.md``.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import threading
import time
import urllib.error
import urllib.request
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional, Sequence, Union

from repro.exec.executor import execute_unit
from repro.exec.faults import TransportFaultPlan
from repro.exec.leases import DEFAULT_LEASE_TTL, LeaseTable
from repro.exec.protocol import (
    PROTOCOL_VERSION,
    ClaimRequest,
    ClaimResponse,
    FailureReport,
    HeartbeatRequest,
    ProtocolError,
    PushRequest,
    PushResponse,
    RegisterRequest,
    RegisterResponse,
    canonical_json,
    decode_unit,
    encode_unit,
)
from repro.exec.store import ResultStore, fingerprints_match
from repro.exec.units import WorkUnit, record_matches_unit
from repro.obs.metrics import MetricsRegistry, render_registries
from repro.obs.progress import emit_progress

#: Deterministic worker-side failures tolerated per unit before the
#: coordinator declares the unit dead and the sweep fails loudly.
DEFAULT_MAX_UNIT_FAILURES = 5

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _parse_listen(listen: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (port 0 asks the OS for one)."""
    host, sep, port_text = listen.rpartition(":")
    if not sep or not host:
        raise ValueError(f"listen address must be 'host:port', got {listen!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"invalid listen port in {listen!r}") from exc
    return host, port


# --------------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------------- #
@dataclass
class _PendingUnit:
    """One submitted unit awaiting a worker's record."""

    unit: WorkUnit
    fingerprint: dict[str, Any]
    document: dict[str, Any]
    callbacks: list[Callable[[dict[str, Any]], None]] = field(default_factory=list)


class _CoordinatorServer(ThreadingHTTPServer):
    """The embedded HTTP server; one handler thread per request."""

    daemon_threads = True
    allow_reuse_address = True
    coordinator: "Coordinator"


class Coordinator:
    """HTTP side of remote dispatch: owns the store, serves the unit lifecycle.

    Parameters
    ----------
    store:
        The :class:`ResultStore` (or its directory) every pushed record is
        verified against and persisted into.  Leases live in
        ``<store>/leases`` — the same table layout single-box executors
        share, so remote workers and local executors interoperate.
    lease_ttl:
        Seconds a claimed unit may go without a heartbeat before its lease
        counts as expired and another worker may steal it.
    listen:
        ``"host:port"`` bind address; port ``0`` picks a free port (read
        the result back from :attr:`address`).  Loopback by default — see
        the module security note.
    extra_registries:
        Additional :class:`MetricsRegistry` instances merged into the
        ``/metrics`` exposition (the executor passes its own registry and
        the process-global one, so one scrape shows the whole run).
    poll_interval:
        Idle-claim retry hint handed to workers (default: derived from the
        TTL).
    max_unit_failures:
        Worker-reported failures tolerated per unit before the unit is
        declared dead and :meth:`wait` raises.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, os.PathLike],
        lease_ttl: float = DEFAULT_LEASE_TTL,
        listen: str = "127.0.0.1:0",
        extra_registries: Sequence[MetricsRegistry] = (),
        poll_interval: Optional[float] = None,
        max_unit_failures: int = DEFAULT_MAX_UNIT_FAILURES,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        if max_unit_failures < 1:
            raise ValueError(f"max_unit_failures must be >= 1, got {max_unit_failures}")
        self.lease_ttl = float(lease_ttl)
        self.poll_interval = (
            float(poll_interval)
            if poll_interval is not None
            else min(max(self.lease_ttl / 20.0, 0.05), 1.0)
        )
        self.max_unit_failures = int(max_unit_failures)
        self.extra_registries = tuple(extra_registries)
        self._lease_directory = self.store.directory / "leases"

        self._condition = threading.Condition()
        self._pending: dict[str, _PendingUnit] = {}
        self._completed: set[str] = set()
        self._failed: dict[str, str] = {}
        self._failures: dict[str, int] = {}
        self._tables: dict[str, LeaseTable] = {}
        self._active_workers: set[str] = set()
        self._finished = False
        self._closed = False

        # Transport counters, created eagerly so a /metrics scrape shows the
        # full repro_remote_* family (at zero) before any traffic arrives.
        self.registry = MetricsRegistry()
        reg = self.registry
        self._workers_total = reg.counter(
            "repro_remote_workers_total", help="Workers that registered with the coordinator."
        )
        self._claims_total = reg.counter(
            "repro_remote_claims_total", help="Unit leases handed to workers."
        )
        self._idle_polls_total = reg.counter(
            "repro_remote_idle_polls_total", help="Claim polls answered with no claimable unit."
        )
        self._unit_fetches_total = reg.counter(
            "repro_remote_unit_fetches_total", help="Unit payload documents served."
        )
        self._heartbeats_total = reg.counter(
            "repro_remote_heartbeats_total", help="Worker heartbeat requests processed."
        )
        self._pushes_total = reg.counter(
            "repro_remote_pushes_total", help="Record pushes accepted and stored."
        )
        self._duplicate_pushes_total = reg.counter(
            "repro_remote_duplicate_pushes_total",
            help="Byte-equal re-pushes of already-stored records (accepted idempotently).",
        )
        self._rejected_pushes_total = reg.counter(
            "repro_remote_rejected_pushes_total",
            help="Pushes rejected (bad fingerprint, corrupt record) and quarantined.",
        )
        self._lease_steals_total = reg.counter(
            "repro_remote_lease_steals_total",
            help="Expired leases stolen from a dead worker through the claim path.",
        )
        self._unit_failures_total = reg.counter(
            "repro_remote_unit_failures_total", help="Worker-reported unit execution failures."
        )
        self._units_completed_total = reg.counter(
            "repro_remote_units_completed_total", help="Units completed via a worker push."
        )
        self._units_pending = reg.gauge(
            "repro_remote_units_pending", help="Units submitted and not yet completed."
        )

        host, port = _parse_listen(listen)
        self._server = _CoordinatorServer((host, port), _CoordinatorHandler)
        self._server.coordinator = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-coordinator",
            daemon=True,
        )
        self._thread.start()

    @property
    def address(self) -> str:
        """Base URL workers connect to (bound host and the actual port)."""
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    # -- executor-facing API ------------------------------------------------- #
    def submit(
        self,
        unit: WorkUnit,
        key: str,
        fingerprint: dict[str, Any],
        on_record: Optional[Callable[[dict[str, Any]], None]] = None,
    ) -> None:
        """Queue ``unit`` for workers; ``on_record`` fires once it completes.

        Raises :class:`ProtocolError` if the unit cannot cross the wire
        (check with :func:`~repro.exec.protocol.unit_is_remotable` first).
        """
        document = encode_unit(unit)
        with self._condition:
            if self._closed:
                raise RuntimeError("coordinator is closed")
            if key in self._completed:
                # Completed since the caller's store check: serve from disk.
                record = self._raw_stored_record(key)
                if record is not None:
                    if on_record is not None:
                        on_record(record)
                    return
                self._completed.discard(key)
            entry = self._pending.get(key)
            if entry is None:
                entry = _PendingUnit(unit=unit, fingerprint=fingerprint, document=document)
                self._pending[key] = entry
                self._units_pending.set(len(self._pending))
            if on_record is not None:
                entry.callbacks.append(on_record)
            self._condition.notify_all()

    def wait(self, keys: Sequence[str], timeout: Optional[float] = None) -> None:
        """Block until every key completes; raise if any unit was declared dead."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                failed = [key for key in keys if key in self._failed]
                if failed:
                    details = "; ".join(
                        f"{key}: {self._failed[key]}" for key in failed[:3]
                    )
                    raise RuntimeError(
                        f"{len(failed)} remote unit(s) failed "
                        f"{self.max_unit_failures} times and were declared dead "
                        f"({details})"
                    )
                if all(key in self._completed for key in keys):
                    return
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"remote units not completed within {timeout}s"
                        )
                self._condition.wait(timeout=remaining if remaining is not None else 1.0)

    def finish(self) -> None:
        """Declare that no more units will be submitted.

        Workers polling an empty queue are answered ``"done"`` (and exit)
        only after this — between batches of one sweep they are told
        ``"idle"`` and keep polling.
        """
        with self._condition:
            self._finished = True
            self._condition.notify_all()

    def close(self, linger: float = 2.0) -> None:
        """Finish, give workers up to ``linger`` seconds to hear "done", stop.

        The linger loop polls the active-worker set, so it normally returns
        in one or two poll intervals; a worker that died mid-run simply
        times the linger out.  Idempotent.
        """
        with self._condition:
            if self._closed:
                return
            self._finished = True
            self._closed = True
            self._condition.notify_all()
        deadline = time.monotonic() + max(0.0, linger)
        while time.monotonic() < deadline:
            with self._condition:
                if not self._active_workers:
                    break
            time.sleep(0.05)
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def render_metrics(self) -> str:
        """The ``/metrics`` document: this registry merged with the extras."""
        return render_registries(self.registry, *self.extra_registries)

    # -- worker-facing operations (called from handler threads) -------------- #
    def register(self, request: RegisterRequest) -> RegisterResponse:
        if request.version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: worker speaks v{request.version}, "
                f"coordinator speaks v{PROTOCOL_VERSION}"
            )
        with self._condition:
            if request.worker not in self._tables:
                self._tables[request.worker] = LeaseTable(
                    self._lease_directory, ttl=self.lease_ttl, owner=request.worker
                )
                self._workers_total.inc()
                emit_progress("worker_registered", worker=request.worker, host=request.host)
            self._active_workers.add(request.worker)
        return RegisterResponse(
            worker=request.worker,
            lease_ttl=self.lease_ttl,
            poll_interval=self.poll_interval,
        )

    def _table_for(self, worker: str) -> LeaseTable:
        table = self._tables.get(worker)
        if table is None:
            raise ProtocolError(f"unknown worker {worker!r} (register first)")
        return table

    def claim(self, request: ClaimRequest) -> ClaimResponse:
        with self._condition:
            table = self._table_for(request.worker)
            for key, entry in list(self._pending.items()):
                steals_before = table.stats.steals
                if not table.claim(key):
                    continue
                if table.stats.steals > steals_before:
                    self._lease_steals_total.inc()
                    emit_progress("remote_lease_stolen", key=key, worker=request.worker)
                self._claims_total.inc()
                return ClaimResponse(
                    status="unit",
                    key=key,
                    fingerprint=entry.fingerprint,
                    retry_after=self.poll_interval,
                )
            if self._finished and not self._pending:
                self._active_workers.discard(request.worker)
                self._condition.notify_all()
                return ClaimResponse(status="done")
            self._idle_polls_total.inc()
            return ClaimResponse(status="idle", retry_after=self.poll_interval)

    def unit_document(self, key: str) -> Optional[dict[str, Any]]:
        with self._condition:
            entry = self._pending.get(key)
            if entry is None:
                return None
            self._unit_fetches_total.inc()
            return entry.document

    def heartbeat(self, request: HeartbeatRequest) -> None:
        with self._condition:
            table = self._table_for(request.worker)
            self._heartbeats_total.inc()
        # Touching lease mtimes needs no coordinator state; the table only
        # refreshes leases this worker actually owns.
        table.heartbeat(request.keys)

    def fail(self, request: FailureReport) -> None:
        with self._condition:
            table = self._table_for(request.worker)
            self._unit_failures_total.inc()
            emit_progress(
                "remote_unit_failed",
                key=request.key,
                worker=request.worker,
                error=request.error,
            )
            table.release(request.key)
            if request.key not in self._pending:
                return
            self._failures[request.key] = self._failures.get(request.key, 0) + 1
            if self._failures[request.key] >= self.max_unit_failures:
                self._failed[request.key] = request.error or "unit execution failed"
                self._pending.pop(request.key, None)
                self._units_pending.set(len(self._pending))
                self._condition.notify_all()

    def push(self, request: PushRequest) -> tuple[int, dict[str, Any]]:
        """Verify and store a pushed record; returns ``(status, body)``."""
        with self._condition:
            table = self._table_for(request.worker)
            entry = self._pending.get(request.key)
            if entry is None:
                if request.key in self._completed:
                    stored = self._raw_stored_record(request.key)
                    if stored is not None and canonical_json(stored) == canonical_json(
                        request.record
                    ):
                        self._duplicate_pushes_total.inc()
                        return 200, PushResponse(status="duplicate").as_json()
                    self._quarantine_push(request)
                    return 409, {
                        "error": f"unit {request.key} already completed with different bytes"
                    }
                return 404, {"error": f"unknown unit {request.key}"}
            if not fingerprints_match(request.fingerprint, entry.fingerprint):
                self._quarantine_push(request)
                return 409, {"error": f"fingerprint mismatch for unit {request.key}"}
            if not record_matches_unit(entry.unit, request.record):
                self._quarantine_push(request)
                return 409, {
                    "error": f"corrupt record for unit {request.key} "
                    f"(expected {entry.unit.n_trials} trials)"
                }
            self.store.put(request.key, request.record, fingerprint=entry.fingerprint)
            table.release(request.key)
            self._pending.pop(request.key, None)
            self._completed.add(request.key)
            self._failures.pop(request.key, None)
            self._units_pending.set(len(self._pending))
            self._pushes_total.inc()
            self._units_completed_total.inc()
            emit_progress("unit_completed", unit=request.key, worker=request.worker)
            for callback in entry.callbacks:
                callback(request.record)
            self._condition.notify_all()
            return 200, PushResponse(status="stored").as_json()

    def status_document(self) -> dict[str, Any]:
        with self._condition:
            return {
                "pending": len(self._pending),
                "completed": len(self._completed),
                "failed": dict(self._failed),
                "finished": self._finished,
                "workers": sorted(self._tables),
                "active_workers": sorted(self._active_workers),
            }

    # -- internals ----------------------------------------------------------- #
    def _raw_stored_record(self, key: str) -> Optional[dict[str, Any]]:
        """The stored record for ``key``, read without touching store stats.

        The store's ``get`` counts hits/misses that feed the *executor's*
        resume accounting; a duplicate-push byte comparison must not inflate
        those numbers.
        """
        try:
            with self.store.path_for(key).open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        record = document.get("record") if isinstance(document, dict) else None
        return record if isinstance(record, dict) else None

    def _quarantine_push(self, request: PushRequest) -> None:
        """Keep a rejected push body on disk for forensics, off the store path.

        ``<key>.pushrejected-<ns>`` never matches the store's ``*.json``
        glob, so a rejected body can never satisfy a later lookup.
        """
        self._rejected_pushes_total.inc()
        emit_progress("remote_push_rejected", key=request.key, worker=request.worker)
        target = self.store.directory / f"{request.key}.pushrejected-{time.time_ns()}"
        try:
            target.write_text(canonical_json(request.as_json()) + "\n", encoding="utf-8")
        except (OSError, ProtocolError):
            pass


# --------------------------------------------------------------------------- #
# HTTP plumbing
# --------------------------------------------------------------------------- #
class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes the coordinator API; every response is canonical JSON."""

    protocol_version = "HTTP/1.1"
    server: _CoordinatorServer

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging goes through emit_progress, not stderr

    def _send_json(self, status: int, document: dict[str, Any]) -> None:
        body = (canonical_json(document) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ProtocolError("invalid Content-Length header") from exc
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise ProtocolError("request body is empty")
        try:
            return json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        coordinator = self.server.coordinator
        try:
            if self.path == "/metrics":
                self._send_text(200, coordinator.render_metrics(), METRICS_CONTENT_TYPE)
            elif self.path == "/api/status":
                self._send_json(200, coordinator.status_document())
            elif self.path.startswith("/api/unit/"):
                key = self.path[len("/api/unit/"):]
                document = coordinator.unit_document(key)
                if document is None:
                    self._send_json(404, {"error": f"unknown unit {key}"})
                else:
                    self._send_json(200, {"key": key, "unit": document})
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except BrokenPipeError:
            pass
        except Exception as exc:  # never let a handler thread die silently
            self._best_effort_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        coordinator = self.server.coordinator
        try:
            body = self._read_json_body()
            if self.path == "/api/register":
                response = coordinator.register(RegisterRequest.from_json(body))
                self._send_json(200, response.as_json())
            elif self.path == "/api/claim":
                response = coordinator.claim(ClaimRequest.from_json(body))
                self._send_json(200, response.as_json())
            elif self.path == "/api/heartbeat":
                coordinator.heartbeat(HeartbeatRequest.from_json(body))
                self._send_json(200, {"ok": True})
            elif self.path == "/api/push":
                status, document = coordinator.push(PushRequest.from_json(body))
                self._send_json(status, document)
            elif self.path == "/api/fail":
                coordinator.fail(FailureReport.from_json(body))
                self._send_json(200, {"ok": True})
            else:
                self._send_json(404, {"error": f"unknown path {self.path}"})
        except ProtocolError as exc:
            try:
                self._send_json(400, {"error": str(exc)})
            except OSError:
                pass
        except BrokenPipeError:
            pass
        except Exception as exc:
            self._best_effort_error(exc)

    def _best_effort_error(self, exc: Exception) -> None:
        try:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        except OSError:
            pass


class CoordinatorClient:
    """Minimal JSON-over-HTTP client for the coordinator API (stdlib only)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(
        self, path: str, payload: Optional[dict[str, Any]] = None
    ) -> tuple[int, dict[str, Any]]:
        """``GET`` (no payload) or ``POST`` (JSON payload) -> ``(status, body)``.

        HTTP error statuses are returned, not raised; connection-level
        failures (refused, reset, timeout) propagate as :class:`OSError`
        for the caller's retry logic.
        """
        url = self.base_url + path
        data = None
        headers = {}
        if payload is not None:
            data = canonical_json(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method="POST" if payload is not None else "GET"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, self._parse(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, self._parse(exc.read())

    @staticmethod
    def _parse(raw: bytes) -> dict[str, Any]:
        try:
            document = json.loads(raw) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {"error": raw.decode("utf-8", errors="replace")}
        return document if isinstance(document, dict) else {"value": document}


# --------------------------------------------------------------------------- #
# Worker loop
# --------------------------------------------------------------------------- #
@dataclass
class WorkerStats:
    """What one :func:`run_worker` loop did, for logs and assertions."""

    worker: str
    executed: int = 0
    pushed: int = 0
    duplicates: int = 0
    idle_polls: int = 0
    failures: int = 0

    def as_json(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "executed": self.executed,
            "pushed": self.pushed,
            "duplicates": self.duplicates,
            "idle_polls": self.idle_polls,
            "failures": self.failures,
        }

    def render(self) -> str:
        return (
            f"worker {self.worker}: executed {self.executed} units "
            f"({self.pushed} pushed, {self.duplicates} duplicates, "
            f"{self.idle_polls} idle polls, {self.failures} failures)"
        )


#: Consecutive connection failures after which a worker that has already
#: completed work treats the coordinator as gone and exits cleanly.
_CONNECTION_FAILURE_LIMIT = 20


def run_worker(
    coordinator: str,
    worker_id: Optional[str] = None,
    poll: Optional[float] = None,
    max_units: Optional[int] = None,
    connect_timeout: float = 60.0,
    request_timeout: float = 30.0,
    transport_faults: Optional[TransportFaultPlan] = None,
) -> WorkerStats:
    """Pull-execute-push units from ``coordinator`` until it says "done".

    The complete worker half of remote dispatch: register (retrying until
    ``connect_timeout`` if the coordinator is not up yet), then loop
    claim → fetch → :func:`~repro.exec.executor.execute_unit` → push, with a
    daemon heartbeat thread keeping the held lease alive.  A unit whose
    execution raises is reported via ``/api/fail`` (releasing the lease for
    an immediate retry elsewhere) and the loop continues.  ``max_units``
    bounds the work taken (for tests); ``transport_faults`` injects
    deterministic push-path faults (for the chaos suite).
    """
    worker = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    client = CoordinatorClient(coordinator, timeout=request_timeout)
    terms = _register_with_retry(client, worker, connect_timeout)
    interval = poll if poll is not None else max(terms.poll_interval, 0.01)
    stats = WorkerStats(worker=worker)

    held: set[str] = set()
    held_lock = threading.Lock()
    stop = threading.Event()
    heartbeat_interval = min(max(terms.lease_ttl / 4.0, 0.05), 15.0)

    def heartbeat_loop() -> None:
        while not stop.wait(heartbeat_interval):
            with held_lock:
                keys = tuple(held)
            if not keys:
                continue
            try:
                client.request(
                    "/api/heartbeat", HeartbeatRequest(worker=worker, keys=keys).as_json()
                )
            except OSError:
                pass  # the claim loop owns connection-failure policy

    heartbeat_thread = threading.Thread(
        target=heartbeat_loop, name=f"{worker}-heartbeat", daemon=True
    )
    heartbeat_thread.start()

    push_attempts: dict[str, int] = {}
    consecutive_failures = 0
    try:
        while True:
            if max_units is not None and stats.executed >= max_units:
                break
            try:
                status, body = client.request(
                    "/api/claim", ClaimRequest(worker=worker).as_json()
                )
            except OSError:
                consecutive_failures += 1
                if consecutive_failures > _CONNECTION_FAILURE_LIMIT:
                    if stats.executed or stats.idle_polls:
                        break  # the coordinator went away after we served it
                    raise
                time.sleep(interval)
                continue
            consecutive_failures = 0
            if status != 200:
                raise RuntimeError(f"claim rejected ({status}): {body.get('error', body)}")
            claim = ClaimResponse.from_json(body)
            if claim.status == "done":
                break
            if claim.status == "idle":
                stats.idle_polls += 1
                time.sleep(claim.retry_after if claim.retry_after > 0 else interval)
                continue
            assert claim.key is not None and claim.fingerprint is not None
            status, body = client.request(f"/api/unit/{claim.key}")
            if status != 200:
                continue  # completed or stolen between claim and fetch
            unit = decode_unit(body.get("unit"))
            with held_lock:
                held.add(claim.key)
            try:
                record = execute_unit(unit)
            except Exception as exc:
                stats.failures += 1
                with held_lock:
                    held.discard(claim.key)
                try:
                    client.request(
                        "/api/fail",
                        FailureReport(
                            worker=worker,
                            key=claim.key,
                            error=f"{type(exc).__name__}: {exc}",
                        ).as_json(),
                    )
                except OSError:
                    pass
                continue
            stats.executed += 1
            try:
                _push_with_faults(
                    client,
                    PushRequest(
                        worker=worker,
                        key=claim.key,
                        fingerprint=claim.fingerprint,
                        record=record,
                    ),
                    transport_faults,
                    push_attempts,
                    stats,
                )
            finally:
                with held_lock:
                    held.discard(claim.key)
    finally:
        stop.set()
        heartbeat_thread.join(timeout=2.0)
    return stats


def _register_with_retry(
    client: CoordinatorClient, worker: str, connect_timeout: float
) -> RegisterResponse:
    """Register, retrying connection failures until the deadline passes."""
    request = RegisterRequest(worker=worker, pid=os.getpid(), host=socket.gethostname())
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            status, body = client.request("/api/register", request.as_json())
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)
            continue
        if status != 200:
            raise RuntimeError(
                f"registration rejected ({status}): {body.get('error', body)}"
            )
        return RegisterResponse.from_json(body)


def _push_with_faults(
    client: CoordinatorClient,
    push: PushRequest,
    plan: Optional[TransportFaultPlan],
    attempts: dict[str, int],
    stats: WorkerStats,
) -> None:
    """Push a record, applying any scheduled transport faults, until acked.

    ``"slow"`` sleeps before the push (long enough, under a short TTL, for
    the lease to be stolen); ``"drop"`` performs the push but discards the
    response and retries (the coordinator answers the retry "duplicate");
    ``"dup_push"`` sends an extra push first.  Every path ends with an
    acknowledged ``stored`` or ``duplicate``.
    """
    document = push.as_json()
    connection_failures = 0
    while True:
        submission = attempts.get(push.key, 0)
        attempts[push.key] = submission + 1
        fault = plan.fault_for(push.key, submission) if plan is not None else None
        if fault == "slow" and plan is not None:
            time.sleep(plan.slow_seconds)
        if fault == "dup_push":
            try:
                client.request("/api/push", document)
            except OSError:
                pass  # the authoritative push below carries the retry logic
        try:
            status, body = client.request("/api/push", document)
        except OSError:
            connection_failures += 1
            if connection_failures > _CONNECTION_FAILURE_LIMIT:
                raise
            time.sleep(0.2)
            continue
        if fault == "drop":
            continue  # response "lost": push again, expect a duplicate ack
        if status == 200:
            response = PushResponse.from_json(body)
            stats.pushed += 1
            if response.status == "duplicate":
                stats.duplicates += 1
            return
        raise RuntimeError(f"push rejected ({status}): {body.get('error', body)}")


def cleanup_store_directory(path: Union[str, os.PathLike]) -> None:
    """Remove a temporary coordinator-owned store directory (best effort)."""
    shutil.rmtree(path, ignore_errors=True)
