"""Parameter-sweep definitions.

Each experiment sweeps one or two system parameters (``k``, ``n``, ``r`` …)
and measures a scalar per point.  :class:`ParameterSweep` is a small,
serialisable description of such a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep: the varied value plus fixed parameters."""

    parameter: str
    value: Any
    fixed: Mapping[str, Any] = field(default_factory=dict)

    def as_kwargs(self) -> dict[str, Any]:
        """All parameters of this point as keyword arguments."""
        kwargs = dict(self.fixed)
        kwargs[self.parameter] = self.value
        return kwargs

    def label(self) -> str:
        """A stable human-readable identity (used in executor unit labels)."""
        return f"{self.parameter}={self.value}"


@dataclass(frozen=True)
class ParameterSweep:
    """A one-dimensional sweep over ``values`` of ``parameter``.

    Attributes
    ----------
    parameter:
        Name of the varied parameter (e.g. ``"n_agents"``).
    values:
        The values the parameter takes, in the order they are run.
    fixed:
        Parameters held constant across the sweep.
    """

    parameter: str
    values: Sequence[Any]
    fixed: Mapping[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[SweepPoint]:
        for value in self.values:
            yield SweepPoint(parameter=self.parameter, value=value, fixed=self.fixed)

    def points(self) -> list[SweepPoint]:
        """All points of the sweep as a list."""
        return list(self)
