"""Scaling fits: power laws with optional logarithmic corrections.

The paper's bounds predict power-law scaling with known exponents
(``T_B ~ n^1 k^{-1/2}`` up to polylog factors).  These helpers fit

* a pure power law ``y = a * x^b`` by least squares in log–log space, and
* a log-corrected power law ``y = a * x^b * log(x)^c``

and report the exponent together with the coefficient of determination in
log space, which is what the experiment harness compares against theory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a least-squares power-law fit ``y = prefactor * x^exponent``."""

    exponent: float
    prefactor: float
    r_squared: float
    log_exponent: float = 0.0

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted ``y`` values at the given ``x``."""
        x = np.asarray(x, dtype=np.float64)
        logs = np.where(x > 1, np.log(x), 1.0)
        return self.prefactor * np.power(x, self.exponent) * np.power(logs, self.log_exponent)


def _validate_xy(x: Sequence[float], y: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x_arr = np.asarray(list(x), dtype=np.float64)
    y_arr = np.asarray(list(y), dtype=np.float64)
    if x_arr.shape != y_arr.shape:
        raise ValueError(f"x and y must have the same length, got {x_arr.shape} and {y_arr.shape}")
    if x_arr.size < 2:
        raise ValueError("at least two points are required for a fit")
    if np.any(x_arr <= 0) or np.any(y_arr <= 0):
        raise ValueError("power-law fits require strictly positive x and y values")
    return x_arr, y_arr


def _r_squared(log_y: np.ndarray, log_y_hat: np.ndarray) -> float:
    ss_res = float(np.sum((log_y - log_y_hat) ** 2))
    ss_tot = float(np.sum((log_y - log_y.mean()) ** 2))
    if ss_tot < 1e-12:
        # Constant data: the fit is perfect iff the residuals vanish too.
        return 1.0 if ss_res < 1e-10 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y = a * x^b`` by ordinary least squares in log–log space."""
    x_arr, y_arr = _validate_xy(x, y)
    log_x = np.log(x_arr)
    log_y = np.log(y_arr)
    design = np.stack([np.ones_like(log_x), log_x], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, log_y, rcond=None)
    intercept, slope = coeffs
    log_y_hat = design @ coeffs
    return PowerLawFit(
        exponent=float(slope),
        prefactor=float(np.exp(intercept)),
        r_squared=_r_squared(log_y, log_y_hat),
    )


def fit_power_law_with_log_correction(
    x: Sequence[float], y: Sequence[float]
) -> PowerLawFit:
    """Fit ``y = a * x^b * (log x)^c`` by least squares in log–log space.

    Requires all ``x > 1`` so that ``log log x`` is defined; the log-corrected
    model is what "tight up to polylogarithmic factors" suggests when fitting
    finite-size data.
    """
    x_arr, y_arr = _validate_xy(x, y)
    if np.any(x_arr <= 1):
        raise ValueError("log-corrected fits require all x > 1")
    log_x = np.log(x_arr)
    log_log_x = np.log(log_x)
    log_y = np.log(y_arr)
    design = np.stack([np.ones_like(log_x), log_x, log_log_x], axis=1)
    coeffs, *_ = np.linalg.lstsq(design, log_y, rcond=None)
    intercept, slope, log_slope = coeffs
    log_y_hat = design @ coeffs
    return PowerLawFit(
        exponent=float(slope),
        prefactor=float(np.exp(intercept)),
        r_squared=_r_squared(log_y, log_y_hat),
        log_exponent=float(log_slope),
    )
