"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Any, Sequence


def format_float(value: Any, digits: int = 3) -> str:
    """Format a number compactly (integers unchanged, floats to ``digits``)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{digits}g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], digits: int = 3) -> str:
    """Render rows as an aligned plain-text table with a header rule."""
    str_rows = [[format_float(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
