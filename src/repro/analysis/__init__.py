"""Analysis toolkit: statistics, scaling fits, sweeps, tables and reports."""

from repro.analysis.statistics import (
    QuantileSketch,
    ReplicationAggregate,
    StreamingMoments,
    SummaryStats,
    bootstrap_ci,
    summarize,
)
from repro.analysis.fitting import (
    PowerLawFit,
    fit_power_law,
    fit_power_law_with_log_correction,
)
from repro.analysis.sweep import ParameterSweep, SweepPoint
from repro.analysis.tables import render_table, format_float
from repro.analysis.report import ExperimentReport, ExperimentRow

__all__ = [
    "QuantileSketch",
    "ReplicationAggregate",
    "StreamingMoments",
    "SummaryStats",
    "summarize",
    "bootstrap_ci",
    "PowerLawFit",
    "fit_power_law",
    "fit_power_law_with_log_correction",
    "ParameterSweep",
    "SweepPoint",
    "render_table",
    "format_float",
    "ExperimentReport",
    "ExperimentRow",
]
