"""Analysis toolkit: statistics, scaling fits, sweeps, tables and reports."""

from repro.analysis.statistics import SummaryStats, summarize, bootstrap_ci
from repro.analysis.fitting import (
    PowerLawFit,
    fit_power_law,
    fit_power_law_with_log_correction,
)
from repro.analysis.sweep import ParameterSweep, SweepPoint
from repro.analysis.tables import render_table, format_float
from repro.analysis.report import ExperimentReport, ExperimentRow

__all__ = [
    "SummaryStats",
    "summarize",
    "bootstrap_ci",
    "PowerLawFit",
    "fit_power_law",
    "fit_power_law_with_log_correction",
    "ParameterSweep",
    "SweepPoint",
    "render_table",
    "format_float",
    "ExperimentReport",
    "ExperimentRow",
]
