"""Summary statistics and bootstrap confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.rng import RandomState, default_rng


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample of scalar measurements."""

    n: int
    mean: float
    std: float
    median: float
    min: float
    max: float
    ci_low: float
    ci_high: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return self.std / np.sqrt(self.n)


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RandomState | int | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval of the mean."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return (float("nan"), float("nan"))
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    if not (0 < confidence < 1):
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    rng = default_rng(rng)
    indices = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize(
    values: Sequence[float],
    confidence: float = 0.95,
    rng: RandomState | int | None = None,
) -> SummaryStats:
    """Summarise a sample: mean, std, median, min/max and a bootstrap CI."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        nan = float("nan")
        return SummaryStats(0, nan, nan, nan, nan, nan, nan, nan)
    lo, hi = bootstrap_ci(arr, confidence=confidence, rng=rng)
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        median=float(np.median(arr)),
        min=float(arr.min()),
        max=float(arr.max()),
        ci_low=lo,
        ci_high=hi,
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (NaN if any value is non-positive)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        return float("nan")
    return float(np.exp(np.mean(np.log(arr))))
