"""Summary statistics, bootstrap confidence intervals and streaming moments.

Two aggregation styles live here:

* the classic *buffered* helpers (:func:`summarize`, :func:`bootstrap_ci`)
  that operate on a materialised sample; and
* the *streaming* accumulators (:class:`StreamingMoments`,
  :class:`QuantileSketch`, :class:`ReplicationAggregate`) — single-pass,
  mergeable and O(1)-memory, so a replication sweep can be summarised
  without ever holding the per-trial value list.  Merging partial
  accumulators in any chunking or order yields the same counts/min/max
  exactly, the same mean/variance up to floating-point associativity
  (Chan's parallel update), and quantiles within the sketch's documented
  relative accuracy.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.util.rng import RandomState, default_rng


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of a sample of scalar measurements."""

    n: int
    mean: float
    std: float
    median: float
    min: float
    max: float
    ci_low: float
    ci_high: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return self.std / np.sqrt(self.n)


def _sample_seed(arr: np.ndarray) -> int:
    """A deterministic RNG seed derived from the sample's bytes.

    ``bootstrap_ci``/``summarize`` used to fall back to entropy-based
    seeding, so two analyses of the *identical* sample reported different
    confidence intervals.  Hashing the sample itself makes the default
    reproducible (same values -> same resamples -> same interval) without
    coupling unrelated samples to one global seed.
    """
    digest = hashlib.sha256(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return int.from_bytes(digest.digest()[:8], "big")


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: RandomState | int | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval of the mean.

    With ``rng=None`` the resampling stream is seeded from a hash of the
    sample bytes, so identical samples always yield identical intervals.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return (float("nan"), float("nan"))
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    if not (0 < confidence < 1):
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    rng = default_rng(_sample_seed(arr) if rng is None else rng)
    indices = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize(
    values: Sequence[float],
    confidence: float = 0.95,
    rng: RandomState | int | None = None,
) -> SummaryStats:
    """Summarise a sample: mean, std, median, min/max and a bootstrap CI."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        nan = float("nan")
        return SummaryStats(0, nan, nan, nan, nan, nan, nan, nan)
    lo, hi = bootstrap_ci(arr, confidence=confidence, rng=rng)
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        median=float(np.median(arr)),
        min=float(arr.min()),
        max=float(arr.max()),
        ci_low=lo,
        ci_high=hi,
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (NaN if any value is non-positive)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        return float("nan")
    return float(np.exp(np.mean(np.log(arr))))


# --------------------------------------------------------------------------- #
# Streaming accumulators
# --------------------------------------------------------------------------- #


class StreamingMoments:
    """Single-pass, mergeable count/mean/variance/min/max accumulator.

    ``add`` is Welford's online update; ``merge`` is Chan et al.'s parallel
    combination of two partial aggregates.  Count, min and max are exact
    under any chunking or merge order; mean and variance agree with the
    buffered computation up to floating-point associativity.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.mean: float = 0.0
        self._m2: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation in (Welford update)."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold a batch of observations in, one at a time."""
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingMoments") -> None:
        """Fold another partial aggregate in (Chan's parallel update)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * (other.count / total)
        self._m2 += other._m2 + delta * delta * (self.count * other.count / total)
        self.count = total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def variance(self) -> float:
        """Sample variance (``ddof=1``); 0.0 for fewer than two points."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation (``ddof=1``)."""
        return math.sqrt(self.variance)

    def copy(self) -> "StreamingMoments":
        out = StreamingMoments()
        out.merge(self)
        return out


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch (DDSketch-flavoured).

    Values are binned into geometrically-spaced buckets whose width is set
    by ``relative_accuracy``: a reported quantile ``q̂`` satisfies
    ``|q̂ - q| <= relative_accuracy * |q|`` for positive values.  Buckets are
    a plain ``{index: count}`` dict, so merging two sketches is bucket-count
    addition — exactly associative and commutative, which makes the sketch
    fully order- and chunking-independent.  Zero and negative values get
    mirrored bucket maps of their own; memory is O(number of distinct
    buckets touched), bounded in practice by the dynamic range of the data.
    """

    __slots__ = ("relative_accuracy", "_gamma", "_log_gamma", "count", "_positive", "_negative", "_zeros")

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not (0.0 < relative_accuracy < 1.0):
            raise ValueError(
                f"relative_accuracy must lie in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self.count: int = 0
        self._positive: dict[int, int] = {}
        self._negative: dict[int, int] = {}
        self._zeros: int = 0

    def _bucket(self, value: float) -> int:
        return int(math.ceil(math.log(value) / self._log_gamma))

    def _bucket_value(self, index: int) -> float:
        # Midpoint (in the relative sense) of bucket ``index``.
        return 2.0 * self._gamma ** index / (1.0 + self._gamma)

    def add(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        self.count += 1
        if value > 0.0:
            index = self._bucket(value)
            self._positive[index] = self._positive.get(index, 0) + 1
        elif value < 0.0:
            index = self._bucket(-value)
            self._negative[index] = self._negative.get(index, 0) + 1
        else:
            self._zeros += 1

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch in (bucket-count addition; exact)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative_accuracy "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        self.count += other.count
        self._zeros += other._zeros
        for index, n in other._positive.items():
            self._positive[index] = self._positive.get(index, 0) + n
        for index, n in other._negative.items():
            self._negative[index] = self._negative.get(index, 0) + n

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (NaN on an empty sketch)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"q must lie in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        # Rank in [0, count - 1]; walk negatives (descending magnitude),
        # then zeros, then positives (ascending).
        rank = q * (self.count - 1)
        seen = 0
        for index in sorted(self._negative, reverse=True):
            seen += self._negative[index]
            if seen > rank:
                return -self._bucket_value(index)
        seen += self._zeros
        if seen > rank:
            return 0.0
        for index in sorted(self._positive):
            seen += self._positive[index]
            if seen > rank:
                return self._bucket_value(index)
        # Floating-point slack: fall back to the largest bucket.
        if self._positive:
            return self._bucket_value(max(self._positive))
        if self._zeros:
            return 0.0
        return -self._bucket_value(min(self._negative))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def n_buckets(self) -> int:
        """Distinct buckets in use (the sketch's memory footprint)."""
        return len(self._positive) + len(self._negative) + (1 if self._zeros else 0)

    def copy(self) -> "QuantileSketch":
        out = QuantileSketch(self.relative_accuracy)
        out.merge(self)
        return out


class ReplicationAggregate:
    """Mergeable aggregate over replication outcomes.

    Mirrors the semantics of the buffered replication summary: a value is
    *completed* when it is ``>= 0`` (failed/timed-out trials are recorded as
    negative sentinels) and only completed values enter the moments and the
    quantile sketch; ``n_total`` counts every trial either way.
    """

    __slots__ = ("n_total", "moments", "sketch")

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        self.n_total: int = 0
        self.moments = StreamingMoments()
        self.sketch = QuantileSketch(relative_accuracy)

    def add(self, value: float) -> None:
        """Fold one replication outcome in (negative = not completed)."""
        self.n_total += 1
        value = float(value)
        if value >= 0.0:
            self.moments.add(value)
            self.sketch.add(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "ReplicationAggregate") -> None:
        """Fold another partial aggregate in."""
        self.n_total += other.n_total
        self.moments.merge(other.moments)
        self.sketch.merge(other.sketch)

    @property
    def n_completed(self) -> int:
        return self.moments.count

    @property
    def completion_rate(self) -> float:
        if self.n_total == 0:
            return 0.0
        return self.n_completed / self.n_total

    @property
    def mean(self) -> float:
        return self.moments.mean if self.n_completed else float("nan")

    @property
    def std(self) -> float:
        return self.moments.std if self.n_completed else float("nan")

    @property
    def median(self) -> float:
        return self.sketch.median

    @property
    def min(self) -> float:
        return self.moments.min if self.n_completed else float("nan")

    @property
    def max(self) -> float:
        return self.moments.max if self.n_completed else float("nan")
