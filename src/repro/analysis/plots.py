"""Lightweight ASCII plotting for terminal-friendly experiment output.

The library deliberately avoids a plotting dependency; these helpers render
small sparklines and log-log scatter plots as text so that examples and the
CLI can show the *shape* of a sweep (e.g. the ``n/sqrt(k)`` decay) directly
in the terminal and in EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

import math
from typing import Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of values as a unicode sparkline.

    NaNs are rendered as spaces; a constant sequence renders at mid-height.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    finite = [v for v in vals if v == v]
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in vals:
        if v != v:
            chars.append(" ")
        elif span == 0:
            chars.append(_SPARK_LEVELS[len(_SPARK_LEVELS) // 2])
        else:
            level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
            chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 60,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    marker: str = "*",
) -> str:
    """Render ``(x, y)`` points as an ASCII scatter plot.

    Parameters
    ----------
    x, y:
        The data; must have equal, non-zero length and (when the log options
        are set) strictly positive values on the corresponding axis.
    width, height:
        Plot size in characters (excluding axes).
    logx, logy:
        Use logarithmic scaling on the corresponding axis — the natural choice
        for power-law sweeps.
    """
    xs = [float(v) for v in x]
    ys = [float(v) for v in y]
    if len(xs) != len(ys):
        raise ValueError(f"x and y must have the same length, got {len(xs)} and {len(ys)}")
    if not xs:
        raise ValueError("cannot plot an empty series")
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    if logx and any(v <= 0 for v in xs):
        raise ValueError("logx requires strictly positive x values")
    if logy and any(v <= 0 for v in ys):
        raise ValueError("logy requires strictly positive y values")

    def transform(values: list[float], log: bool) -> list[float]:
        return [math.log(v) for v in values] if log else list(values)

    tx = transform(xs, logx)
    ty = transform(ys, logy)
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    cells = [[" "] * width for _ in range(height)]
    for px, py in zip(tx, ty):
        col = int((px - x_lo) / x_span * (width - 1))
        row = int((py - y_lo) / y_span * (height - 1))
        cells[height - 1 - row][col] = marker

    lines = ["|" + "".join(row) for row in cells]
    lines.append("+" + "-" * width)
    x_label = f"x: [{min(xs):.3g}, {max(xs):.3g}]" + (" (log)" if logx else "")
    y_label = f"y: [{min(ys):.3g}, {max(ys):.3g}]" + (" (log)" if logy else "")
    lines.append(f" {x_label}   {y_label}")
    return "\n".join(lines)
