"""Experiment reports: the rows/series an experiment produces.

Every experiment module returns an :class:`ExperimentReport`, which carries a
tabular payload (one :class:`ExperimentRow` per sweep point), scalar summary
metrics (e.g. a fitted exponent) and a human-readable rendering used by the
benchmark harness and by EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.analysis.tables import render_table


@dataclass(frozen=True)
class ExperimentRow:
    """One row of an experiment table (an ordered mapping of column -> value)."""

    values: Mapping[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Value of a column, or ``default`` if absent."""
        return self.values.get(key, default)


@dataclass(frozen=True)
class ExperimentReport:
    """The output of one experiment: identification, rows and summary metrics."""

    experiment_id: str
    title: str
    parameters: Mapping[str, Any]
    rows: Sequence[ExperimentRow]
    summary: Mapping[str, Any] = field(default_factory=dict)

    @property
    def columns(self) -> list[str]:
        """Column names, taken from the first row (empty if there are no rows)."""
        if not self.rows:
            return []
        return list(self.rows[0].values.keys())

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def to_table(self, digits: int = 4) -> str:
        """Render the rows as an aligned plain-text table."""
        columns = self.columns
        data = [[row.get(col) for col in columns] for row in self.rows]
        return render_table(columns, data, digits=digits)

    def render(self, digits: int = 4) -> str:
        """Full human-readable rendering: header, parameters, table, summary."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.parameters:
            params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
            lines.append(f"parameters: {params}")
        if self.rows:
            lines.append(self.to_table(digits=digits))
        if self.summary:
            lines.append("summary:")
            for key, value in self.summary.items():
                lines.append(f"  {key} = {value}")
        return "\n".join(lines)
