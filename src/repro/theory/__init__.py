"""Closed-form theoretical predictions used as oracles by the experiments.

Every bound of the paper is available as a Python function so that the
benchmark harness can print measured-vs-predicted rows and scaling fits can
be compared against the theoretical exponents.
"""

from repro.theory.bounds import (
    broadcast_time_upper_bound,
    broadcast_time_lower_bound,
    broadcast_time_scale,
    cover_time_bound,
    predator_prey_extinction_bound,
    dense_model_broadcast_bound,
)
from repro.theory.lemmas import (
    lemma1_visit_probability_lower,
    lemma2_displacement_tail_bound,
    lemma2_range_lower,
    lemma3_meeting_probability_lower,
    lemma6_island_size_bound,
    lemma7_frontier_window,
    lemma7_frontier_advance_bound,
)
from repro.theory.scaling import (
    polylog,
    tilde_ratio,
    theoretical_exponent_in_k,
    theoretical_exponent_in_n,
)
from repro.connectivity.percolation import (
    percolation_radius,
    island_parameter_gamma,
    lower_bound_radius,
)
from repro.baselines.wang_bound import wang_claimed_infection_time
from repro.baselines.dimitriou_bound import dimitriou_infection_time_bound

__all__ = [
    "broadcast_time_upper_bound",
    "broadcast_time_lower_bound",
    "broadcast_time_scale",
    "cover_time_bound",
    "predator_prey_extinction_bound",
    "dense_model_broadcast_bound",
    "lemma1_visit_probability_lower",
    "lemma2_displacement_tail_bound",
    "lemma2_range_lower",
    "lemma3_meeting_probability_lower",
    "lemma6_island_size_bound",
    "lemma7_frontier_window",
    "lemma7_frontier_advance_bound",
    "polylog",
    "tilde_ratio",
    "theoretical_exponent_in_k",
    "theoretical_exponent_in_n",
    "percolation_radius",
    "island_parameter_gamma",
    "lower_bound_radius",
    "wang_claimed_infection_time",
    "dimitriou_infection_time_bound",
]
