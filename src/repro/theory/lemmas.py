"""Quantitative predictions of the technical lemmas (Lemmas 1-3, 6, 7).

The unspecified absolute constants of the lemmas (``c1 … c5``) are exposed as
parameters with default value 1; experiments fit or normalise them away and
only check the *functional form* (e.g. a ``1 / log d`` decay of the meeting
probability).
"""

from __future__ import annotations

import math

from repro.connectivity.percolation import island_parameter_gamma
from repro.util.validation import check_positive_int


def lemma1_visit_probability_lower(distance: int, c1: float = 1.0) -> float:
    """Lemma 1: probability of visiting a node at distance ``d`` within ``d^2`` steps.

    The bound is ``c1 / max(1, log d)``.
    """
    distance = check_positive_int(distance, "distance")
    return c1 / max(1.0, math.log(distance))


def lemma2_displacement_tail_bound(lam: float) -> float:
    """Lemma 2 (point 1): tail bound ``2 exp(-λ^2 / 2)`` on the displacement.

    The probability that at any given step within the first ``ℓ`` steps the
    walk is at distance at least ``λ sqrt(ℓ)`` from its start is at most this.
    """
    if lam < 0:
        raise ValueError(f"lam must be non-negative, got {lam}")
    return 2.0 * math.exp(-(lam**2) / 2.0)


def lemma2_range_lower(steps: int, c2: float = 1.0) -> float:
    """Lemma 2 (point 2): range lower bound ``c2 * ℓ / log ℓ``.

    A walk of length ``ℓ`` visits at least this many distinct nodes with
    probability greater than 1/2.
    """
    steps = check_positive_int(steps, "steps")
    return c2 * steps / max(1.0, math.log(steps))


def lemma3_meeting_probability_lower(distance: int, c3: float = 1.0) -> float:
    """Lemma 3: meeting probability lower bound ``c3 / max(1, log d)``."""
    distance = check_positive_int(distance, "distance")
    return c3 / max(1.0, math.log(distance))


def lemma6_island_size_bound(n_nodes: int) -> float:
    """Lemma 6: the largest island has at most ``log n`` agents w.h.p."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    return math.log(n_nodes)


def lemma7_frontier_window(n_nodes: int, n_agents: int) -> float:
    """Lemma 7: the length ``γ^2 / (144 log n)`` of one frontier observation window."""
    gamma = island_parameter_gamma(n_nodes, n_agents)
    log_n = max(math.log(n_nodes), 1.0)
    return gamma * gamma / (144.0 * log_n)


def lemma7_frontier_advance_bound(n_nodes: int, n_agents: int) -> float:
    """Lemma 7: maximum frontier advance ``(γ log n) / 2`` per observation window."""
    gamma = island_parameter_gamma(n_nodes, n_agents)
    log_n = max(math.log(n_nodes), 1.0)
    return gamma * log_n / 2.0


def theorem2_horizon(n_nodes: int, n_agents: int) -> float:
    """Theorem 2: the time ``T = n / (1152 e^3 sqrt(k) log^2 n)`` before which
    broadcast cannot complete w.h.p."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    n_agents = check_positive_int(n_agents, "n_agents")
    log_n = max(math.log(n_nodes), 1.0)
    return n_nodes / (1152.0 * math.exp(3.0) * math.sqrt(n_agents) * log_n**2)
