"""Headline bounds of the paper (Theorems 1 and 2 and the Section 4 by-products).

All bounds are stated up to constants and polylogarithmic factors; the
functions below expose the *leading-order scale* together with optional
polylog corrections so that experiments can report measured-to-predicted
ratios that should remain roughly constant across a sweep.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int


def broadcast_time_scale(n_nodes: int, n_agents: int) -> float:
    """The leading-order broadcast-time scale ``n / sqrt(k)`` (Theorems 1 and 2)."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    n_agents = check_positive_int(n_agents, "n_agents")
    return n_nodes / math.sqrt(n_agents)


def broadcast_time_upper_bound(
    n_nodes: int, n_agents: int, polylog_exponent: float = 0.0, constant: float = 1.0
) -> float:
    """Theorem 1 upper bound ``Õ(n / sqrt(k))``.

    ``polylog_exponent`` adds a ``log^c n`` correction; the theorem hides such
    factors inside the tilde.
    """
    scale = broadcast_time_scale(n_nodes, n_agents)
    log_n = max(math.log(n_nodes), 1.0)
    return constant * scale * log_n**polylog_exponent


def broadcast_time_lower_bound(n_nodes: int, n_agents: int, constant: float = 1.0) -> float:
    """Theorem 2 lower bound ``Ω(n / (sqrt(k) log^2 n))``."""
    scale = broadcast_time_scale(n_nodes, n_agents)
    log_n = max(math.log(n_nodes), 1.0)
    return constant * scale / (log_n**2)


def cover_time_bound(n_nodes: int, n_walkers: int, constant: float = 1.0) -> float:
    """Section 4 cover-time bound ``O(n log^2 n / k + n log n)`` for ``k`` walks."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    n_walkers = check_positive_int(n_walkers, "n_walkers")
    log_n = max(math.log(n_nodes), 1.0)
    return constant * (n_nodes * log_n**2 / n_walkers + n_nodes * log_n)


def predator_prey_extinction_bound(
    n_nodes: int, n_predators: int, constant: float = 1.0
) -> float:
    """Section 4 extinction-time bound ``O(n log^2 n / k)`` for ``k`` predators."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    n_predators = check_positive_int(n_predators, "n_predators")
    log_n = max(math.log(n_nodes), 1.0)
    return constant * n_nodes * log_n**2 / n_predators


def dense_model_broadcast_bound(n_nodes: int, transmission_radius: float, constant: float = 1.0) -> float:
    """The Clementi et al. dense-model bound ``Θ(sqrt(n) / R)``.

    Valid in the dense regime ``k = Θ(n)`` with ``ρ = O(R)`` and
    ``R = Ω(sqrt(log n))``; used as the baseline expectation in experiment
    E16.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    if transmission_radius <= 0:
        raise ValueError(f"transmission_radius must be positive, got {transmission_radius}")
    return constant * math.sqrt(n_nodes) / transmission_radius
