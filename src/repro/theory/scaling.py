"""Tilde-notation helpers: polylogarithmic corrections and scaling exponents.

The paper's results are tight only up to polylogarithmic factors, so the
experiments never compare absolute values.  Instead they either

* fit a power law ``T ~ k^alpha`` (optionally with a log correction) and
  compare the exponent against the theoretical value, or
* form the ratio ``measured / predicted_scale`` and check that it varies by
  at most a polylogarithmic factor across the sweep.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int

#: Theoretical scaling exponent of T_B in k at fixed n (Theorems 1 and 2).
THEORETICAL_EXPONENT_IN_K = -0.5

#: Theoretical scaling exponent of T_B in n at fixed k (Theorems 1 and 2).
THEORETICAL_EXPONENT_IN_N = 1.0


def theoretical_exponent_in_k() -> float:
    """The exponent of ``k`` in ``T_B = Θ̃(n / sqrt(k))``: ``-1/2``."""
    return THEORETICAL_EXPONENT_IN_K


def theoretical_exponent_in_n() -> float:
    """The exponent of ``n`` in ``T_B = Θ̃(n / sqrt(k))``: ``+1``."""
    return THEORETICAL_EXPONENT_IN_N


def polylog(n: int, exponent: float) -> float:
    """``log^exponent n`` with the convention ``log n >= 1``."""
    n = check_positive_int(n, "n")
    return max(math.log(n), 1.0) ** exponent


def tilde_ratio(measured: float, predicted_scale: float, n: int) -> float:
    """``measured / (predicted_scale)`` normalised to be log-insensitive.

    A reproduction "matches up to polylog factors" when this ratio stays
    within a band ``[1/polylog, polylog]`` across a sweep.  The function
    simply returns the raw ratio; the banding is applied by the analysis
    layer, but the ``n`` argument documents which size the polylog refers to.
    """
    if predicted_scale <= 0:
        raise ValueError(f"predicted_scale must be positive, got {predicted_scale}")
    check_positive_int(n, "n")
    return measured / predicted_scale


def within_polylog_band(
    measured: float, predicted_scale: float, n: int, exponent: float = 3.0, constant: float = 10.0
) -> bool:
    """Whether ``measured`` is within a ``constant * log^exponent n`` factor of the scale."""
    band = constant * polylog(n, exponent)
    ratio = tilde_ratio(measured, predicted_scale, n)
    return (1.0 / band) <= ratio <= band
