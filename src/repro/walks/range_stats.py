"""Walk-range statistics (validation of Lemma 2, point 2).

Lemma 2 states that with probability greater than 1/2 a walk of length ``ℓ``
visits at least ``c2 * ℓ / log ℓ`` distinct nodes.  This module estimates the
distribution of the range ``R_ℓ`` (number of distinct nodes visited) and of
the maximum displacement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.kernels import StepRule
from repro.walks.single import walk_trajectory, max_displacement, distinct_nodes_visited
from repro.util.rng import RandomState, default_rng
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class RangeStatistics:
    """Summary of the range / displacement of walks of a fixed length."""

    steps: int
    trials: int
    mean_range: float
    median_range: float
    min_range: int
    max_range: int
    mean_max_displacement: float
    ranges: np.ndarray
    displacements: np.ndarray

    @property
    def normalised_range(self) -> float:
        """``mean_range * log(steps) / steps`` — should be Θ(1) by Lemma 2."""
        if self.steps <= 1:
            return float(self.mean_range)
        return self.mean_range * math.log(self.steps) / self.steps

    def fraction_above(self, threshold: float) -> float:
        """Fraction of trials whose range is at least ``threshold``."""
        if self.trials == 0:
            return 0.0
        return float(np.count_nonzero(self.ranges >= threshold) / self.trials)

    @classmethod
    def from_samples(
        cls, steps: int, ranges: np.ndarray, displacements: np.ndarray
    ) -> "RangeStatistics":
        """Aggregate per-walk range/displacement samples.

        The single aggregation point shared by
        :func:`estimate_range_statistics` and the sharded E15 sampling
        loop, so the summary definitions cannot drift between the paths.
        """
        ranges = np.asarray(ranges, dtype=np.int64)
        displacements = np.asarray(displacements, dtype=np.int64)
        return cls(
            steps=steps,
            trials=int(ranges.shape[0]),
            mean_range=float(ranges.mean()),
            median_range=float(np.median(ranges)),
            min_range=int(ranges.min()),
            max_range=int(ranges.max()),
            mean_max_displacement=float(displacements.mean()),
            ranges=ranges,
            displacements=displacements,
        )


def estimate_range_statistics(
    grid: Grid2D,
    steps: int,
    trials: int,
    rng: RandomState | int | None = None,
    rule: StepRule = "lazy",
    start: np.ndarray | None = None,
) -> RangeStatistics:
    """Monte-Carlo estimate of the range statistics of a length-``steps`` walk."""
    steps = check_positive_int(steps, "steps")
    trials = check_positive_int(trials, "trials")
    rng = default_rng(rng)
    start = grid.center() if start is None else np.asarray(start, dtype=np.int64)
    ranges = np.empty(trials, dtype=np.int64)
    displacements = np.empty(trials, dtype=np.int64)
    for i in range(trials):
        traj = walk_trajectory(grid, start, steps, rng=rng, rule=rule)
        ranges[i] = distinct_nodes_visited(traj, grid)
        displacements[i] = max_displacement(traj)
    return RangeStatistics.from_samples(steps, ranges, displacements)
