"""Vectorised stepping of many independent random walks on the grid.

The primitive step rules — ``lazy`` (the paper's kernel, which keeps the
uniform distribution over grid nodes stationary) and ``simple`` (move to a
uniformly random neighbour every step, used by the Lemma 3 meeting
experiments) — live in :mod:`repro.mobility.kernels`, the kernel layer
shared by the mobility models and both replication backends; this module
provides :class:`WalkEngine`, a convenience wrapper that advances ``k``
walks while tracking time.
"""

from __future__ import annotations

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.kernels import StepRule, lazy_step, simple_step
from repro.util.rng import RandomState, default_rng

__all__ = ["WalkEngine"]


class WalkEngine:
    """Vectorised engine advancing ``k`` independent random walks.

    Parameters
    ----------
    grid:
        The lattice on which the walks live.
    positions:
        Initial ``(k, 2)`` integer positions; if ``None``, ``k`` uniform
        random positions are drawn (``k`` must then be given).
    rule:
        ``"lazy"`` (paper model, default) or ``"simple"``.
    rng:
        Random generator or seed.
    """

    def __init__(
        self,
        grid: Grid2D,
        positions: np.ndarray | None = None,
        *,
        k: int | None = None,
        rule: StepRule = "lazy",
        rng: RandomState | int | None = None,
    ) -> None:
        self._grid = grid
        self._rng = default_rng(rng)
        if rule not in ("lazy", "simple"):
            raise ValueError(f"rule must be 'lazy' or 'simple', got {rule!r}")
        self._rule = rule
        if positions is None:
            if k is None:
                raise ValueError("either positions or k must be given")
            positions = grid.random_positions(k, self._rng)
        positions = np.asarray(positions, dtype=np.int64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must have shape (k, 2), got {positions.shape}")
        if not np.all(grid.contains(positions)):
            raise ValueError("some initial positions lie outside the grid")
        self._positions = positions.copy()
        self._time = 0

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid2D:
        """The underlying lattice."""
        return self._grid

    @property
    def positions(self) -> np.ndarray:
        """Current ``(k, 2)`` positions (a copy; mutating it has no effect)."""
        return self._positions.copy()

    @property
    def n_walkers(self) -> int:
        """Number of walks being advanced."""
        return self._positions.shape[0]

    @property
    def time(self) -> int:
        """Number of steps taken so far."""
        return self._time

    @property
    def rule(self) -> StepRule:
        """The step rule in use."""
        return self._rule

    # ------------------------------------------------------------------ #
    def step_(self) -> np.ndarray:
        """Advance every walk by one step and return the *internal* positions.

        Hot-loop variant of :meth:`step` that skips the defensive copy; the
        returned array is the engine's own state and must not be mutated.
        """
        if self._rule == "lazy":
            self._positions = lazy_step(self._grid, self._positions, self._rng)
        else:
            self._positions = simple_step(self._grid, self._positions, self._rng)
        self._time += 1
        return self._positions

    def step(self) -> np.ndarray:
        """Advance every walk by one step and return the new positions (a copy)."""
        self.step_()
        return self.positions

    def run(self, steps: int) -> np.ndarray:
        """Advance every walk by ``steps`` steps and return the final positions."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step_()
        return self.positions

    def trajectory(self, steps: int) -> np.ndarray:
        """Advance ``steps`` steps recording positions; shape ``(steps+1, k, 2)``.

        Index 0 of the first axis holds the positions *before* the first step.
        """
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        out = np.empty((steps + 1, self.n_walkers, 2), dtype=np.int64)
        out[0] = self._positions
        for t in range(1, steps + 1):
            out[t] = self.step_()
        return out
