"""Vectorised stepping of many independent random walks on the grid.

Two step rules are provided:

* ``lazy`` — the paper's rule: an agent on a node with ``n_v`` neighbours
  moves to each neighbour with probability ``1/5`` and stays with probability
  ``1 - n_v / 5``.  This keeps the uniform distribution over grid nodes
  stationary, which the upper-bound proof relies on (the "density condition").
* ``simple`` — the classical simple random walk that moves to a uniformly
  random neighbour at every step (used for the Lemma 3 meeting experiments,
  which are stated for simple walks).

Both rules are implemented by drawing one of five *proposals*
(stay / +x / -x / +y / -y) per agent and rejecting proposals that would leave
the grid (the agent stays instead), which reproduces the boundary behaviour
exactly while remaining a single vectorised numpy operation per step.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.grid.lattice import Grid2D
from repro.util.rng import RandomState, default_rng

StepRule = Literal["lazy", "simple"]

# Proposal table: row i is the displacement of proposal i.
# Proposal 0 is "stay"; proposals 1-4 are the four axis moves.
_PROPOSALS = np.array(
    [[0, 0], [1, 0], [-1, 0], [0, 1], [0, -1]],
    dtype=np.int64,
)


def lazy_step(grid: Grid2D, positions: np.ndarray, rng: RandomState) -> np.ndarray:
    """Advance every walk by one *lazy* step (the paper's mobility rule).

    Each agent draws one of the five proposals uniformly; off-grid proposals
    are rejected (the agent stays).  Because each of the ``n_v`` valid
    neighbours is selected with probability exactly ``1/5`` and the stay
    probability absorbs the rest, this matches the transition kernel of
    Section 2 of the paper.
    """
    positions = np.asarray(positions, dtype=np.int64)
    k = positions.shape[0]
    choice = rng.integers(0, 5, size=k)
    return apply_lazy_choices(grid, positions, choice)


def simple_step(grid: Grid2D, positions: np.ndarray, rng: RandomState) -> np.ndarray:
    """Advance every walk by one *simple* (non-lazy) step.

    Each agent moves to a uniformly random valid neighbour.  Implemented by
    rejection: draw one of the four axis moves, and re-draw (vectorised) for
    the agents whose proposal left the grid.
    """
    positions = np.asarray(positions, dtype=np.int64)
    k = positions.shape[0]
    current = positions.copy()
    pending = np.arange(k)
    result = positions.copy()
    # At most a handful of rounds are needed in practice: corner nodes accept
    # half of the proposals, so the pending set shrinks geometrically.
    while pending.size:
        choice = rng.integers(1, 5, size=pending.size)
        proposed = current[pending] + _PROPOSALS[choice]
        inside = (
            (proposed[:, 0] >= 0)
            & (proposed[:, 0] < grid.side)
            & (proposed[:, 1] >= 0)
            & (proposed[:, 1] < grid.side)
        )
        accepted = pending[inside]
        result[accepted] = proposed[inside]
        pending = pending[~inside]
    return result


def apply_lazy_choices(grid: Grid2D, positions: np.ndarray, choice: np.ndarray) -> np.ndarray:
    """Apply pre-drawn lazy-step proposals to a positions array.

    ``positions`` has shape ``(..., 2)`` and ``choice`` the matching leading
    shape, with values in ``0..4`` indexing the proposal table (stay / +x /
    -x / +y / -y).  Off-grid proposals are rejected (the agent stays),
    exactly as in :func:`lazy_step`.  Splitting the draw from the apply lets
    the batched backend pre-draw choices in per-trial blocks while keeping
    the trajectory identical.
    """
    proposed = positions + _PROPOSALS[choice]
    inside = np.all((proposed >= 0) & (proposed < grid.side), axis=-1)
    return np.where(inside[..., None], proposed, positions)


def lazy_step_batch(
    grid: Grid2D, positions: np.ndarray, rngs: Sequence[RandomState]
) -> np.ndarray:
    """Advance a batch of replications by one *lazy* step each.

    Parameters
    ----------
    grid:
        The lattice shared by every replication.
    positions:
        Integer array of shape ``(R, k, 2)``: the positions of ``R``
        independent replications.
    rngs:
        One generator per replication.  Each trial draws exactly the numbers
        :func:`lazy_step` would draw from the same generator, so a batched
        trial reproduces its serial counterpart bit for bit.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.ndim != 3 or positions.shape[2] != 2:
        raise ValueError(f"positions must have shape (R, k, 2), got {positions.shape}")
    n_trials, k = positions.shape[:2]
    if len(rngs) != n_trials:
        raise ValueError(f"expected {n_trials} generators, got {len(rngs)}")
    choice = np.empty((n_trials, k), dtype=np.int64)
    for i, rng in enumerate(rngs):
        choice[i] = rng.integers(0, 5, size=k)
    return apply_lazy_choices(grid, positions, choice)


def simple_step_batch(
    grid: Grid2D, positions: np.ndarray, rngs: Sequence[RandomState]
) -> np.ndarray:
    """Advance a batch of replications by one *simple* step each.

    The rejection loop of :func:`simple_step` consumes a data-dependent
    number of draws per trial, so trials are stepped one generator at a time
    (still vectorised over the ``k`` agents) to preserve bit-for-bit
    agreement with the serial backend.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.ndim != 3 or positions.shape[2] != 2:
        raise ValueError(f"positions must have shape (R, k, 2), got {positions.shape}")
    if len(rngs) != positions.shape[0]:
        raise ValueError(f"expected {positions.shape[0]} generators, got {len(rngs)}")
    out = np.empty_like(positions)
    for i, rng in enumerate(rngs):
        out[i] = simple_step(grid, positions[i], rng)
    return out


class WalkEngine:
    """Vectorised engine advancing ``k`` independent random walks.

    Parameters
    ----------
    grid:
        The lattice on which the walks live.
    positions:
        Initial ``(k, 2)`` integer positions; if ``None``, ``k`` uniform
        random positions are drawn (``k`` must then be given).
    rule:
        ``"lazy"`` (paper model, default) or ``"simple"``.
    rng:
        Random generator or seed.
    """

    def __init__(
        self,
        grid: Grid2D,
        positions: np.ndarray | None = None,
        *,
        k: int | None = None,
        rule: StepRule = "lazy",
        rng: RandomState | int | None = None,
    ) -> None:
        self._grid = grid
        self._rng = default_rng(rng)
        if rule not in ("lazy", "simple"):
            raise ValueError(f"rule must be 'lazy' or 'simple', got {rule!r}")
        self._rule = rule
        if positions is None:
            if k is None:
                raise ValueError("either positions or k must be given")
            positions = grid.random_positions(k, self._rng)
        positions = np.asarray(positions, dtype=np.int64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ValueError(f"positions must have shape (k, 2), got {positions.shape}")
        if not np.all(grid.contains(positions)):
            raise ValueError("some initial positions lie outside the grid")
        self._positions = positions.copy()
        self._time = 0

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid2D:
        """The underlying lattice."""
        return self._grid

    @property
    def positions(self) -> np.ndarray:
        """Current ``(k, 2)`` positions (a copy; mutating it has no effect)."""
        return self._positions.copy()

    @property
    def n_walkers(self) -> int:
        """Number of walks being advanced."""
        return self._positions.shape[0]

    @property
    def time(self) -> int:
        """Number of steps taken so far."""
        return self._time

    @property
    def rule(self) -> StepRule:
        """The step rule in use."""
        return self._rule

    # ------------------------------------------------------------------ #
    def step_(self) -> np.ndarray:
        """Advance every walk by one step and return the *internal* positions.

        Hot-loop variant of :meth:`step` that skips the defensive copy; the
        returned array is the engine's own state and must not be mutated.
        """
        if self._rule == "lazy":
            self._positions = lazy_step(self._grid, self._positions, self._rng)
        else:
            self._positions = simple_step(self._grid, self._positions, self._rng)
        self._time += 1
        return self._positions

    def step(self) -> np.ndarray:
        """Advance every walk by one step and return the new positions (a copy)."""
        self.step_()
        return self.positions

    def run(self, steps: int) -> np.ndarray:
        """Advance every walk by ``steps`` steps and return the final positions."""
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        for _ in range(steps):
            self.step_()
        return self.positions

    def trajectory(self, steps: int) -> np.ndarray:
        """Advance ``steps`` steps recording positions; shape ``(steps+1, k, 2)``.

        Index 0 of the first axis holds the positions *before* the first step.
        """
        if steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        out = np.empty((steps + 1, self.n_walkers, 2), dtype=np.int64)
        out[0] = self._positions
        for t in range(1, steps + 1):
            out[t] = self.step_()
        return out
