"""Deprecated shim — the walk-stepping API moved out of this module.

The primitive step rules (``lazy_step``, ``simple_step``, the batched
variants and the pre-drawn-choice applicator) live in
:mod:`repro.mobility.kernels`, the kernel layer shared by every mobility
model and both replication backends; :class:`~repro.walks.walkers.WalkEngine`
lives in :mod:`repro.walks.walkers`.  This module re-exports both for
backwards compatibility only — no module under ``src/`` may import it (a
regression test enforces this), and it will be removed once external users
have migrated.
"""

from __future__ import annotations

from repro.mobility.kernels import (  # noqa: F401  (re-exported API)
    StepRule,
    apply_lazy_choices,
    lazy_step,
    lazy_step_batch,
    simple_step,
    simple_step_batch,
)
from repro.walks.walkers import WalkEngine  # noqa: F401  (re-exported API)

__all__ = [
    "StepRule",
    "apply_lazy_choices",
    "lazy_step",
    "lazy_step_batch",
    "simple_step",
    "simple_step_batch",
    "WalkEngine",
]
