"""Single-walk utilities: trajectories, hitting times, displacement, range.

These helpers back the validation of Lemma 1 (visit probability of a node at
distance ``d`` within ``d^2`` steps) and Lemma 2 (displacement concentration
and number of distinct nodes visited).
"""

from __future__ import annotations

import numpy as np

from repro.grid.lattice import Grid2D
from repro.mobility.kernels import StepRule
from repro.walks.walkers import WalkEngine
from repro.util.rng import RandomState, default_rng


def walk_trajectory(
    grid: Grid2D,
    start: np.ndarray,
    steps: int,
    rng: RandomState | int | None = None,
    rule: StepRule = "lazy",
) -> np.ndarray:
    """Trajectory of a single walk: ``(steps + 1, 2)`` array of positions."""
    start = np.asarray(start, dtype=np.int64).reshape(1, 2)
    engine = WalkEngine(grid, start, rule=rule, rng=rng)
    return engine.trajectory(steps)[:, 0, :]


def hitting_time(
    grid: Grid2D,
    start: np.ndarray,
    target: np.ndarray,
    max_steps: int,
    rng: RandomState | int | None = None,
    rule: StepRule = "lazy",
) -> int:
    """First time the walk started at ``start`` visits ``target``.

    Returns ``-1`` if the target is not hit within ``max_steps`` steps.
    Time 0 counts (a walk starting on the target hits it immediately).
    """
    start = np.asarray(start, dtype=np.int64).reshape(2)
    target = np.asarray(target, dtype=np.int64).reshape(2)
    if np.array_equal(start, target):
        return 0
    engine = WalkEngine(grid, start.reshape(1, 2), rule=rule, rng=rng)
    for t in range(1, max_steps + 1):
        pos = engine.step()[0]
        if pos[0] == target[0] and pos[1] == target[1]:
            return t
    return -1


def visit_within(
    grid: Grid2D,
    start: np.ndarray,
    target: np.ndarray,
    steps: int,
    rng: RandomState | int | None = None,
    rule: StepRule = "lazy",
) -> bool:
    """Whether the walk visits ``target`` within ``steps`` steps (Lemma 1 event)."""
    return hitting_time(grid, start, target, steps, rng=rng, rule=rule) >= 0


def max_displacement(trajectory: np.ndarray) -> int:
    """Maximum Manhattan displacement from the starting position.

    ``trajectory`` has shape ``(T + 1, 2)``; the result is
    ``max_t ||x_t - x_0||_1`` (Lemma 2, point 1, concerns this quantity).
    """
    traj = np.asarray(trajectory, dtype=np.int64)
    if traj.ndim != 2 or traj.shape[1] != 2:
        raise ValueError(f"trajectory must have shape (T+1, 2), got {traj.shape}")
    deltas = np.abs(traj - traj[0]).sum(axis=1)
    return int(deltas.max())


def distinct_nodes_visited(trajectory: np.ndarray, grid: Grid2D) -> int:
    """Number of distinct grid nodes touched by the trajectory (Lemma 2, point 2)."""
    traj = np.asarray(trajectory, dtype=np.int64)
    if traj.ndim != 2 or traj.shape[1] != 2:
        raise ValueError(f"trajectory must have shape (T+1, 2), got {traj.shape}")
    node_ids = grid.node_id(traj)
    return int(np.unique(np.atleast_1d(node_ids)).size)


def displacement_tail_probability(
    grid: Grid2D,
    steps: int,
    lam: float,
    trials: int,
    rng: RandomState | int | None = None,
    rule: StepRule = "lazy",
) -> float:
    """Empirical probability that a walk strays ``>= lam * sqrt(steps)`` from its start.

    Lemma 2 (point 1) bounds this probability by ``2 * exp(-lam^2 / 2)`` for
    each fixed step; here we measure the (larger) probability that the
    maximum displacement over the whole interval exceeds the threshold, which
    is what the experiments report.
    """
    rng = default_rng(rng)
    threshold = lam * np.sqrt(steps)
    center = grid.center()
    exceed = 0
    for _ in range(trials):
        traj = walk_trajectory(grid, center, steps, rng=rng, rule=rule)
        if max_displacement(traj) >= threshold:
            exceed += 1
    return exceed / trials if trials else 0.0
