"""Random-walk substrate.

Implements the paper's lazy random walk (probability ``1/5`` to move to each
existing neighbour, stay otherwise) as a vectorised multi-agent engine, plus
single-walk utilities (hitting times, range, displacement) and the pairwise
meeting experiments that validate Lemma 3.
"""

from repro.mobility.kernels import (
    lazy_step,
    lazy_step_batch,
    simple_step,
    simple_step_batch,
)
from repro.walks.walkers import WalkEngine
from repro.walks.single import (
    walk_trajectory,
    hitting_time,
    visit_within,
    max_displacement,
    distinct_nodes_visited,
)
from repro.walks.meeting import MeetingExperiment, MeetingResult, estimate_meeting_probability
from repro.walks.range_stats import RangeStatistics, estimate_range_statistics
from repro.walks.occupancy import (
    StationarityReport,
    chi_square_uniformity,
    occupancy_counts,
    stationarity_check,
)

__all__ = [
    "WalkEngine",
    "lazy_step",
    "lazy_step_batch",
    "simple_step",
    "simple_step_batch",
    "walk_trajectory",
    "hitting_time",
    "visit_within",
    "max_displacement",
    "distinct_nodes_visited",
    "MeetingExperiment",
    "MeetingResult",
    "estimate_meeting_probability",
    "RangeStatistics",
    "estimate_range_statistics",
    "StationarityReport",
    "chi_square_uniformity",
    "occupancy_counts",
    "stationarity_check",
]
