"""Occupancy and stationarity diagnostics for the lazy random walk.

The proof of Theorem 1 relies on the "density condition": because the lazy
kernel keeps the uniform distribution over grid nodes stationary, at every
time step the agents are uniformly and independently distributed, so every
tessellation cell holds roughly its expected share of agents.  These helpers
measure node occupancy and run a chi-square goodness-of-fit test against the
uniform distribution, which the test suite uses to verify that the
implementation of the kernel really is measure-preserving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.grid.lattice import Grid2D
from repro.mobility.kernels import StepRule
from repro.walks.walkers import WalkEngine
from repro.util.rng import RandomState, default_rng
from repro.util.validation import check_positive_int


def occupancy_counts(grid: Grid2D, positions: np.ndarray) -> np.ndarray:
    """Number of agents on each grid node (length ``n_nodes`` array)."""
    node_ids = np.atleast_1d(grid.node_id(np.asarray(positions)))
    return np.bincount(node_ids, minlength=grid.n_nodes)


def chi_square_uniformity(counts: np.ndarray) -> tuple[float, float]:
    """Chi-square statistic and p-value of the counts against uniformity.

    A large p-value (e.g. > 0.01) means the observed occupancy is consistent
    with agents being placed uniformly at random.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size < 2:
        raise ValueError("at least two cells are required for a chi-square test")
    total = counts.sum()
    if total <= 0:
        raise ValueError("counts must contain at least one observation")
    statistic, p_value = stats.chisquare(counts)
    return float(statistic), float(p_value)


@dataclass(frozen=True)
class StationarityReport:
    """Result of a stationarity check of the walk kernel."""

    n_nodes: int
    n_walkers: int
    steps: int
    samples: int
    p_values: np.ndarray

    @property
    def min_p_value(self) -> float:
        """Smallest p-value across the sampled time instants."""
        return float(self.p_values.min()) if self.p_values.size else float("nan")

    @property
    def mean_p_value(self) -> float:
        """Mean p-value across the sampled time instants."""
        return float(self.p_values.mean()) if self.p_values.size else float("nan")

    def consistent_with_uniform(self, alpha: float = 0.001) -> bool:
        """Whether no sampled instant rejects uniformity at level ``alpha``.

        With ``samples`` independent-ish tests a Bonferroni-style very small
        ``alpha`` avoids false alarms while still catching a genuinely
        non-uniform kernel (whose p-values collapse to ~0).
        """
        return bool(self.min_p_value >= alpha)


def stationarity_check(
    grid: Grid2D,
    n_walkers: int,
    steps: int,
    samples: int = 5,
    rule: StepRule = "lazy",
    rng: RandomState | int | None = None,
) -> StationarityReport:
    """Run ``n_walkers`` walks and test occupancy uniformity at sampled instants.

    The walks start from the uniform distribution; after every
    ``steps // samples`` further steps the node occupancy is tested against
    the uniform distribution.  For the paper's lazy kernel the distribution is
    stationary, so all p-values should be well above zero; a kernel that (for
    example) piles agents up at the boundary fails immediately.
    """
    n_walkers = check_positive_int(n_walkers, "n_walkers")
    steps = check_positive_int(steps, "steps")
    samples = check_positive_int(samples, "samples")
    rng = default_rng(rng)

    engine = WalkEngine(grid, k=n_walkers, rule=rule, rng=rng)
    interval = max(steps // samples, 1)
    p_values = []
    for _ in range(samples):
        engine.run(interval)
        counts = occupancy_counts(grid, engine.positions)
        _, p_value = chi_square_uniformity(counts)
        p_values.append(p_value)
    return StationarityReport(
        n_nodes=grid.n_nodes,
        n_walkers=n_walkers,
        steps=engine.time,
        samples=samples,
        p_values=np.asarray(p_values, dtype=np.float64),
    )
