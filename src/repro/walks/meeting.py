"""Pairwise meeting experiments (validation of Lemma 3).

Lemma 3 states: for two independent simple random walks started at Manhattan
distance ``d >= 1``, the probability that they meet within ``T = d^2`` steps
*at a node of the lens* ``D`` (the set of nodes within distance ``d`` of both
starting points) is at least ``c3 / max(1, log d)``.

:class:`MeetingExperiment` estimates this probability by Monte-Carlo
simulation of pairs of walks, also recording *where* the meeting occurred so
the lens restriction can be checked.

The default step rule is the paper's *lazy* walk.  Two strictly simple
(non-lazy) walks started at odd Manhattan distance can never occupy the same
node simultaneously — the parity of their distance is preserved — so the
literal simple-walk experiment is only meaningful for even ``d``; the lazy
kernel, which is what the paper's agents actually use, has no such parity
constraint and obeys the same asymptotic bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.lattice import Grid2D
from repro.grid.geometry import manhattan_distance
from repro.mobility.kernels import StepRule
from repro.walks.walkers import WalkEngine
from repro.util.rng import RandomState, default_rng
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class MeetingResult:
    """Outcome of a Monte-Carlo meeting-probability estimate."""

    initial_distance: int
    horizon: int
    trials: int
    meetings: int
    meetings_in_lens: int

    @property
    def probability(self) -> float:
        """Estimated probability of meeting anywhere within the horizon."""
        return self.meetings / self.trials if self.trials else 0.0

    @property
    def probability_in_lens(self) -> float:
        """Estimated probability of meeting *inside the lens D* (Lemma 3 event)."""
        return self.meetings_in_lens / self.trials if self.trials else 0.0


class MeetingExperiment:
    """Monte-Carlo estimator of the Lemma 3 meeting probability.

    Parameters
    ----------
    grid:
        The lattice.
    initial_distance:
        Manhattan distance ``d`` between the two starting nodes.
    horizon:
        Number of steps to simulate; ``None`` uses the paper's ``T = d^2``.
    rule:
        Step rule; defaults to the paper's lazy walk (see the module
        docstring for why the strictly simple walk is parity-constrained).
    """

    def __init__(
        self,
        grid: Grid2D,
        initial_distance: int,
        horizon: int | None = None,
        rule: StepRule = "lazy",
    ) -> None:
        self._grid = grid
        self._d = check_positive_int(initial_distance, "initial_distance")
        if self._d > grid.diameter:
            raise ValueError(
                f"initial_distance {self._d} exceeds the grid diameter {grid.diameter}"
            )
        self._horizon = int(horizon) if horizon is not None else self._d * self._d
        if self._horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self._horizon}")
        self._rule = rule

    # ------------------------------------------------------------------ #
    @property
    def initial_distance(self) -> int:
        """The initial Manhattan distance ``d``."""
        return self._d

    @property
    def horizon(self) -> int:
        """Number of simulated steps ``T`` (default ``d^2``)."""
        return self._horizon

    # ------------------------------------------------------------------ #
    def _starting_points(self) -> tuple[np.ndarray, np.ndarray]:
        """Two points at distance ``d`` placed symmetrically around the centre."""
        side = self._grid.side
        mid_y = side // 2
        left = self._d // 2
        right = self._d - left
        cx = side // 2
        a = np.array([max(cx - left, 0), mid_y], dtype=np.int64)
        b = np.array([min(cx + right, side - 1), mid_y], dtype=np.int64)
        # If clipping reduced the distance (tiny grids), push b right/left.
        actual = int(manhattan_distance(a, b))
        if actual != self._d:
            b = np.array([min(int(a[0]) + self._d, side - 1), mid_y], dtype=np.int64)
            if int(manhattan_distance(a, b)) != self._d:
                raise ValueError(
                    f"cannot place two nodes at distance {self._d} on a grid of side {side}"
                )
        return a, b

    def run_trial(self, rng: RandomState) -> tuple[bool, bool]:
        """Simulate one pair of walks; returns ``(met, met_inside_lens)``."""
        a0, b0 = self._starting_points()
        positions = np.stack([a0, b0])
        engine = WalkEngine(self._grid, positions, rule=self._rule, rng=rng)
        for _ in range(self._horizon):
            pos = engine.step()
            if pos[0, 0] == pos[1, 0] and pos[0, 1] == pos[1, 1]:
                meeting = pos[0]
                in_lens = (
                    int(manhattan_distance(meeting, a0)) <= self._d
                    and int(manhattan_distance(meeting, b0)) <= self._d
                )
                return True, in_lens
        return False, False

    def estimate(self, trials: int, rng: RandomState | int | None = None) -> MeetingResult:
        """Estimate the meeting probability from ``trials`` independent pairs."""
        trials = check_positive_int(trials, "trials")
        rng = default_rng(rng)
        meetings = 0
        in_lens = 0
        for _ in range(trials):
            met, lens = self.run_trial(rng)
            meetings += int(met)
            in_lens += int(lens)
        return MeetingResult(
            initial_distance=self._d,
            horizon=self._horizon,
            trials=trials,
            meetings=meetings,
            meetings_in_lens=in_lens,
        )


def estimate_meeting_probability(
    grid: Grid2D,
    initial_distance: int,
    trials: int,
    rng: RandomState | int | None = None,
    horizon: int | None = None,
    rule: StepRule = "lazy",
) -> MeetingResult:
    """Convenience wrapper building a :class:`MeetingExperiment` and running it."""
    experiment = MeetingExperiment(grid, initial_distance, horizon=horizon, rule=rule)
    return experiment.estimate(trials, rng=rng)
