"""Concrete workload parameters for every experiment at every scale.

The grids below were sized so that the ``small`` scale finishes in a few
seconds to a few tens of seconds per experiment on a laptop while still being
large enough for the theoretical scaling shapes (exponents, orderings,
thresholds) to be visible.  The ``paper`` scale pushes system sizes up by
roughly 4x in ``n``; the ``tiny`` scale exists so that integration tests can
exercise the full experiment path quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

SCALES = ("tiny", "small", "paper")


@dataclass(frozen=True)
class Workload:
    """A named bundle of experiment parameters."""

    experiment_id: str
    scale: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.params[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Parameter value, or ``default`` if absent."""
        return self.params.get(key, default)


# --------------------------------------------------------------------------- #
# Per-experiment parameter grids.  Keys: experiment id -> scale -> params.
# --------------------------------------------------------------------------- #
_WORKLOADS: dict[str, dict[str, dict[str, Any]]] = {
    # E1: broadcast time vs number of agents (fixed n, r = 0).
    "E1": {
        "tiny": {"n_nodes": 16 * 16, "agent_counts": [4, 8, 16], "replications": 2},
        "small": {"n_nodes": 32 * 32, "agent_counts": [4, 8, 16, 32, 64], "replications": 6},
        "paper": {"n_nodes": 64 * 64, "agent_counts": [8, 16, 32, 64, 128, 256], "replications": 8},
    },
    # E2: broadcast time vs number of nodes (fixed k, r = 0).
    "E2": {
        "tiny": {"n_agents": 8, "node_counts": [12 * 12, 16 * 16], "replications": 2},
        "small": {"n_agents": 16, "node_counts": [16 * 16, 24 * 24, 32 * 32, 48 * 48], "replications": 4},
        "paper": {"n_agents": 32, "node_counts": [24 * 24, 32 * 32, 48 * 48, 64 * 64, 96 * 96], "replications": 8},
    },
    # E3: broadcast time vs transmission radius below the percolation point.
    "E3": {
        "tiny": {"n_nodes": 16 * 16, "n_agents": 16, "radius_fractions": [0.0, 0.5], "replications": 2},
        "small": {
            "n_nodes": 32 * 32,
            "n_agents": 32,
            "radius_fractions": [0.0, 0.2, 0.4, 0.6, 0.8],
            "replications": 4,
        },
        "paper": {
            "n_nodes": 64 * 64,
            "n_agents": 64,
            "radius_fractions": [0.0, 0.1, 0.25, 0.5, 0.75, 0.9],
            "replications": 8,
        },
    },
    # E4: maximum island size below the percolation point (Lemma 6).
    "E4": {
        "tiny": {"node_counts": [16 * 16, 32 * 32], "density": 8, "samples": 5},
        "small": {"node_counts": [16 * 16, 32 * 32, 64 * 64, 128 * 128], "density": 8, "samples": 20},
        "paper": {"node_counts": [32 * 32, 64 * 64, 128 * 128, 256 * 256], "density": 8, "samples": 50},
    },
    # E5: meeting probability of two walks vs initial distance (Lemma 3).
    # Distances are kept even so the simple-walk parity constraint is harmless.
    "E5": {
        "tiny": {"side": 32, "distances": [2, 4, 8], "trials": 60},
        "small": {"side": 64, "distances": [2, 4, 8, 16, 32], "trials": 500},
        "paper": {"side": 128, "distances": [2, 4, 8, 16, 32, 64], "trials": 1000},
    },
    # E6: frontier advance per observation window (Lemma 7).
    "E6": {
        "tiny": {"n_nodes": 24 * 24, "n_agents": 32, "replications": 1},
        "small": {"n_nodes": 48 * 48, "n_agents": 64, "replications": 3},
        "paper": {"n_nodes": 96 * 96, "n_agents": 128, "replications": 5},
    },
    # E7: Frog model broadcast time vs number of agents.
    "E7": {
        "tiny": {"n_nodes": 16 * 16, "agent_counts": [4, 8, 16], "replications": 2},
        "small": {"n_nodes": 32 * 32, "agent_counts": [8, 16, 32, 64], "replications": 4},
        "paper": {"n_nodes": 64 * 64, "agent_counts": [16, 32, 64, 128], "replications": 8},
    },
    # E8: gossip time vs number of agents and comparison with broadcast time.
    "E8": {
        "tiny": {"n_nodes": 12 * 12, "agent_counts": [4, 8], "replications": 2},
        "small": {"n_nodes": 24 * 24, "agent_counts": [8, 16, 32], "replications": 3},
        "paper": {"n_nodes": 48 * 48, "agent_counts": [16, 32, 64], "replications": 6},
    },
    # E9: coverage time T_C vs broadcast time T_B.
    "E9": {
        "tiny": {"n_nodes": 12 * 12, "agent_counts": [4, 8], "replications": 2},
        "small": {"n_nodes": 24 * 24, "agent_counts": [8, 16, 32], "replications": 3},
        "paper": {"n_nodes": 48 * 48, "agent_counts": [16, 32, 64], "replications": 6},
    },
    # E10: cover time of k independent random walks.
    "E10": {
        "tiny": {"n_nodes": 12 * 12, "walker_counts": [2, 4, 8], "replications": 2},
        "small": {"n_nodes": 24 * 24, "walker_counts": [1, 2, 4, 8, 16], "replications": 3},
        "paper": {"n_nodes": 48 * 48, "walker_counts": [2, 4, 8, 16, 32, 64], "replications": 6},
    },
    # E11: predator-prey extinction time vs number of predators.
    "E11": {
        "tiny": {"n_nodes": 12 * 12, "n_preys": 10, "predator_counts": [4, 8], "replications": 2},
        "small": {"n_nodes": 32 * 32, "n_preys": 20, "predator_counts": [4, 8, 16, 32], "replications": 3},
        "paper": {"n_nodes": 64 * 64, "n_preys": 40, "predator_counts": [8, 16, 32, 64], "replications": 6},
    },
    # E12: measured infection time vs the Wang et al. claimed bound.  The k
    # sweep extends far enough (two decades) for the sqrt(k) vs k/log(k)
    # decay laws to separate clearly at finite size.
    "E12": {
        "tiny": {"n_nodes": 16 * 16, "agent_counts": [4, 16, 64], "replications": 2},
        "small": {"n_nodes": 32 * 32, "agent_counts": [4, 16, 64, 256], "replications": 4},
        "paper": {"n_nodes": 64 * 64, "agent_counts": [8, 32, 128, 512, 2048], "replications": 8},
    },
    # E13: giant component fraction vs transmission radius (percolation).
    "E13": {
        "tiny": {"n_nodes": 16 * 16, "n_agents": 32, "radius_factors": [0.25, 1.0, 2.0], "samples": 5},
        "small": {
            "n_nodes": 32 * 32,
            "n_agents": 64,
            "radius_factors": [0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0],
            "samples": 20,
        },
        "paper": {
            "n_nodes": 64 * 64,
            "n_agents": 128,
            "radius_factors": [0.125, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 4.0],
            "samples": 50,
        },
    },
    # E14: broadcast time below vs above the percolation point.
    "E14": {
        "tiny": {"n_nodes": 16 * 16, "n_agents": 32, "replications": 2},
        "small": {"n_nodes": 32 * 32, "n_agents": 64, "replications": 4},
        "paper": {"n_nodes": 64 * 64, "n_agents": 128, "replications": 8},
    },
    # E15: walk range R_l vs walk length (Lemma 2).
    "E15": {
        "tiny": {"side": 32, "lengths": [64, 256], "trials": 10},
        "small": {"side": 64, "lengths": [64, 256, 1024, 4096], "trials": 20},
        "paper": {"side": 128, "lengths": [256, 1024, 4096, 16384], "trials": 40},
    },
    # E16: dense-model baseline (Clementi et al.): T_B vs exchange radius R.
    "E16": {
        "tiny": {"n_nodes": 12 * 12, "exchange_radii": [2, 4], "jump_radius": 1, "replications": 2},
        "small": {"n_nodes": 24 * 24, "exchange_radii": [2, 4, 8], "jump_radius": 1, "replications": 3},
        "paper": {"n_nodes": 48 * 48, "exchange_radii": [2, 4, 8, 16], "jump_radius": 2, "replications": 6},
    },
    # E17: broadcast through a bottleneck wall (barrier extension).  Gap
    # widths are listed narrowest first.
    "E17": {
        "tiny": {"side": 16, "n_agents": 16, "gap_widths": [1, 16], "replications": 2},
        "small": {"side": 32, "n_agents": 32, "gap_widths": [1, 4, 16, 32], "replications": 4},
        "paper": {"side": 64, "n_agents": 64, "gap_widths": [1, 4, 16, 64], "replications": 8},
    },
}


def get_workload(experiment_id: str, scale: str = "small") -> Workload:
    """The workload of ``experiment_id`` at ``scale`` (tiny/small/paper)."""
    experiment_id = experiment_id.upper()
    if experiment_id not in _WORKLOADS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_WORKLOADS)}"
        )
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; choose from {SCALES}")
    return Workload(
        experiment_id=experiment_id,
        scale=scale,
        params=dict(_WORKLOADS[experiment_id][scale]),
    )
