"""Workload definitions: named parameter grids for every experiment.

Each experiment can be run at three scales:

* ``"tiny"``   — seconds; used by the integration tests.
* ``"small"``  — tens of seconds; the default for the benchmark harness.
* ``"paper"``  — minutes; closer to the asymptotic regime, for offline runs.
"""

from repro.workloads.configs import Workload, get_workload, SCALES

__all__ = ["Workload", "get_workload", "SCALES"]
