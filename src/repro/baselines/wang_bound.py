"""The infection-time bound claimed by Wang, Kapadia and Krishnamachari (2008).

Wang et al. claim a tight bound of ``Θ((n log n log k) / k)`` on the
infection time on the grid, based on an informal argument with unwarranted
independence assumptions.  The paper's Theorem 2 shows that the true
broadcast/infection time is ``Ω(n / (sqrt(k) log^2 n))``, which grows much
faster than the claimed bound as ``k`` increases — the claimed bound is
therefore incorrect.  Experiment E12 plots the measured infection time
against both formulas.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int


def wang_claimed_infection_time(n_nodes: int, n_agents: int, constant: float = 1.0) -> float:
    """The (incorrect) claimed infection time ``(n log n log k) / k``."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    n_agents = check_positive_int(n_agents, "n_agents")
    log_n = max(math.log(n_nodes), 1.0)
    log_k = max(math.log(n_agents), 1.0)
    return constant * n_nodes * log_n * log_k / n_agents


def wang_vs_true_ratio(n_nodes: int, n_agents: int) -> float:
    """Ratio of the true lower bound to the Wang et al. claim.

    The ratio grows like ``sqrt(k) / (log^3 n log k)``; once it exceeds 1 the
    claimed bound is provably violated.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    n_agents = check_positive_int(n_agents, "n_agents")
    log_n = max(math.log(n_nodes), 1.0)
    true_lower = n_nodes / (math.sqrt(n_agents) * log_n**2)
    claimed = wang_claimed_infection_time(n_nodes, n_agents)
    return true_lower / claimed
