"""The general infection-time bound of Dimitriou, Nikoletseas and Spirakis (2006).

For ``k`` agents moving in an ``n``-node graph, the average infection time is
``O(t* log k)`` where ``t*`` is the maximum average meeting time of two
random walks on the graph.  On the grid ``t* = O(n log n)`` (Aldous & Fill),
so the bound specialises to ``O(n log n log k)`` — note that it does *not*
improve as ``k`` grows, unlike the paper's ``Õ(n / sqrt(k))``.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int


def grid_maximum_meeting_time(n_nodes: int, constant: float = 1.0) -> float:
    """The maximum average meeting time ``t* = O(n log n)`` on the grid."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    log_n = max(math.log(n_nodes), 1.0)
    return constant * n_nodes * log_n


def dimitriou_infection_time_bound(n_nodes: int, n_agents: int, constant: float = 1.0) -> float:
    """The Dimitriou et al. bound ``O(t* log k) = O(n log n log k)`` on the grid."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    n_agents = check_positive_int(n_agents, "n_agents")
    log_k = max(math.log(n_agents), 1.0)
    return constant * grid_maximum_meeting_time(n_nodes) * log_k
