"""Broadcast above the percolation point (the regime of Peres et al., SODA 2011).

Peres et al. show that when the agent density is above the percolation point
the broadcast time is polylogarithmic in ``k`` — qualitatively much faster
than the ``Θ̃(n / sqrt(k))`` of the sparse regime.  Experiment E14 contrasts
the two regimes by running the same simulator with a radius slightly above
and well below ``r_c``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.connectivity.percolation import percolation_radius
from repro.core.config import BroadcastConfig
from repro.core.simulation import BroadcastSimulation
from repro.util.rng import RandomState
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class RegimeComparison:
    """Broadcast times measured below and above the percolation point."""

    n_nodes: int
    n_agents: int
    radius_below: float
    radius_above: float
    broadcast_time_below: int
    broadcast_time_above: int

    @property
    def speedup(self) -> float:
        """How much faster broadcast completes above the percolation point."""
        if self.broadcast_time_above <= 0:
            return float("inf")
        if self.broadcast_time_below < 0:
            return float("inf")
        return self.broadcast_time_below / max(self.broadcast_time_above, 1)


def above_percolation_broadcast(
    n_nodes: int,
    n_agents: int,
    radius_factor: float = 2.0,
    max_steps: int | None = None,
    rng: RandomState | int | None = None,
    mobility: str = "random_walk",
) -> int:
    """Broadcast time with transmission radius ``radius_factor * r_c``.

    ``radius_factor > 1`` puts the system above the percolation point, where
    Peres et al. predict polylogarithmic broadcast time.
    """
    check_positive_int(n_nodes, "n_nodes")
    check_positive_int(n_agents, "n_agents")
    if radius_factor <= 0:
        raise ValueError(f"radius_factor must be positive, got {radius_factor}")
    radius = radius_factor * percolation_radius(n_nodes, n_agents)
    config = BroadcastConfig(
        n_nodes=n_nodes,
        n_agents=n_agents,
        radius=radius,
        max_steps=max_steps,
        mobility=mobility,
    )
    return BroadcastSimulation(config, rng=rng).run().broadcast_time
