"""Classical push–pull rumor spreading on a static graph.

The Related Work section contrasts mobile networks with the rich literature
on rumor spreading in static graphs (push, pull, push–pull protocols), whose
performance is governed by expansion properties.  This module implements the
synchronous push–pull protocol on an arbitrary ``networkx`` graph so that
examples can contrast "static grid with push–pull" against "mobile sparse
network with flooding".
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.util.rng import RandomState, default_rng
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class PushPullResult:
    """Outcome of a push–pull rumor-spreading run on a static graph."""

    n_nodes: int
    rounds: int
    completed: bool
    informed_curve: np.ndarray


def push_pull_rounds(
    graph: nx.Graph,
    source: int | None = None,
    max_rounds: int | None = None,
    rng: RandomState | int | None = None,
) -> PushPullResult:
    """Run synchronous push–pull until every node is informed.

    In every round each informed node *pushes* the rumor to a uniformly
    random neighbour and each uninformed node *pulls* from a uniformly random
    neighbour (learning the rumor if that neighbour is informed).

    Isolated nodes can never be informed; in that case the run stops at
    ``max_rounds`` and is reported as incomplete.
    """
    n_nodes = graph.number_of_nodes()
    check_positive_int(n_nodes, "graph.number_of_nodes()")
    rng = default_rng(rng)
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    neighbors = [list(graph.neighbors(node)) for node in nodes]

    informed = np.zeros(n_nodes, dtype=bool)
    if source is None:
        source_idx = int(rng.integers(0, n_nodes))
    else:
        source_idx = index[source]
    informed[source_idx] = True

    if max_rounds is None:
        max_rounds = 20 * max(int(np.ceil(np.log2(n_nodes + 1))), 1) + n_nodes
    curve = [int(informed.sum())]
    rounds = 0
    while not informed.all() and rounds < max_rounds:
        new_informed = informed.copy()
        for i in range(n_nodes):
            neigh = neighbors[i]
            if not neigh:
                continue
            target = index[neigh[int(rng.integers(0, len(neigh)))]]
            if informed[i]:
                new_informed[target] = True  # push
            elif informed[target]:
                new_informed[i] = True  # pull
        informed = new_informed
        rounds += 1
        curve.append(int(informed.sum()))

    return PushPullResult(
        n_nodes=n_nodes,
        rounds=rounds,
        completed=bool(informed.all()),
        informed_curve=np.asarray(curve, dtype=np.int64),
    )
