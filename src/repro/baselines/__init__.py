"""Baselines and comparison models from the paper's Related Work section.

* :mod:`repro.baselines.dense_model` — the dense ``R/ρ`` model of Clementi et
  al. (broadcast time ``Θ(sqrt(n)/R)`` when ``k = Θ(n)``).
* :mod:`repro.baselines.wang_bound` — the ``Θ((n log n log k)/k)`` infection
  time claimed by Wang et al., which the paper shows to be incorrect.
* :mod:`repro.baselines.dimitriou_bound` — the general ``O(t* log k)`` bound
  of Dimitriou et al., which specialises to ``O(n log n log k)`` on the grid.
* :mod:`repro.baselines.peres_above` — broadcast above the percolation point
  (the regime of Peres et al., SODA 2011), where the broadcast time becomes
  polylogarithmic in ``k``.
* :mod:`repro.baselines.static_pushpull` — classical push–pull rumor
  spreading on a static graph, for contrast with the mobile setting.
"""

from repro.baselines.dense_model import DenseModelSimulation, DenseModelResult
from repro.baselines.wang_bound import wang_claimed_infection_time
from repro.baselines.dimitriou_bound import (
    dimitriou_infection_time_bound,
    grid_maximum_meeting_time,
)
from repro.baselines.peres_above import above_percolation_broadcast
from repro.baselines.static_pushpull import push_pull_rounds, PushPullResult

__all__ = [
    "DenseModelSimulation",
    "DenseModelResult",
    "wang_claimed_infection_time",
    "dimitriou_infection_time_bound",
    "grid_maximum_meeting_time",
    "above_percolation_broadcast",
    "push_pull_rounds",
    "PushPullResult",
]
