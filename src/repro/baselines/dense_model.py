"""The dense mobile model of Clementi et al. (IPDPS 2009 / ICALP 2009).

In that model ``k = Θ(n)`` agents live on the ``n``-node grid.  At every step
an agent (a) exchanges information with all agents within distance ``R`` —
a *single-hop* exchange, not transitive flooding — and (b) jumps to a
uniformly random node within distance ``ρ`` of its current position.  For
``ρ = O(R)`` and ``R = Ω(sqrt(log n))`` the broadcast time is
``Θ(sqrt(n)/R)``; for ``ρ = Ω(max{R, sqrt(log n)})`` it is
``O(sqrt(n)/ρ + log n)``.

The single-hop exchange is the essential modelling difference with the
paper's sparse model: in the dense regime the visibility graph has a giant
(indeed, spanning) component, so the paper's instantaneous intra-component
flooding would finish in one step.  Clementi et al. instead let information
travel only ``R`` per step, which is what produces the ``sqrt(n)/R`` law this
baseline reproduces (experiment E16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.connectivity.spatial_hash import neighbor_pairs
from repro.grid.lattice import Grid2D
from repro.mobility.jump import JumpMobility
from repro.util.rng import RandomState, default_rng
from repro.util.validation import check_non_negative, check_positive_int


@dataclass(frozen=True)
class DenseModelResult:
    """Outcome of a dense-model broadcast run."""

    n_nodes: int
    n_agents: int
    exchange_radius: float
    jump_radius: int
    broadcast_time: int
    completed: bool
    n_steps: int
    informed_curve: np.ndarray


def _single_hop_exchange(
    positions: np.ndarray, informed: np.ndarray, radius: float
) -> np.ndarray:
    """One round of single-hop exchange: informed agents inform neighbours within ``radius``."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    new_informed = informed.copy()
    pairs = neighbor_pairs(positions, radius)
    if pairs.size:
        a, b = pairs[:, 0], pairs[:, 1]
        new_informed[b[informed[a]]] = True
        new_informed[a[informed[b]]] = True
    return new_informed


class DenseModelSimulation:
    """Broadcast in the Clementi et al. dense model (single-hop exchange + jumps).

    Parameters
    ----------
    n_nodes:
        Number of grid nodes.
    n_agents:
        Number of agents; the theoretical guarantees require ``k = Θ(n)`` but
        any value is accepted.
    exchange_radius:
        The communication radius ``R`` (single-hop reach per step).
    jump_radius:
        The mobility radius ``ρ``.
    max_steps:
        Simulation horizon; the default is generous for the ``sqrt(n)/R`` law.
    """

    def __init__(
        self,
        n_nodes: int,
        n_agents: int,
        exchange_radius: float,
        jump_radius: int,
        max_steps: Optional[int] = None,
    ) -> None:
        self._n_nodes = check_positive_int(n_nodes, "n_nodes")
        self._n_agents = check_positive_int(n_agents, "n_agents")
        self._radius = check_non_negative(exchange_radius, "exchange_radius")
        self._rho = check_positive_int(jump_radius, "jump_radius")
        self._grid = Grid2D.from_nodes(n_nodes)
        if max_steps is None:
            max_steps = 200 * self._grid.side + 1000
        self._max_steps = check_positive_int(max_steps, "max_steps")

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid2D:
        """The underlying lattice."""
        return self._grid

    @property
    def exchange_radius(self) -> float:
        """The single-hop communication radius ``R``."""
        return self._radius

    @property
    def jump_radius(self) -> int:
        """The mobility radius ``ρ``."""
        return self._rho

    # ------------------------------------------------------------------ #
    def run(self, rng: RandomState | int | None = None) -> DenseModelResult:
        """Run one broadcast and return the dense-model result summary."""
        rng = default_rng(rng)
        mobility = JumpMobility(self._grid, jump_radius=self._rho)
        positions = mobility.initial_positions(self._n_agents, rng)
        informed = np.zeros(self._n_agents, dtype=bool)
        informed[int(rng.integers(0, self._n_agents))] = True

        broadcast_time = -1
        curve: list[int] = []
        t = 0
        while t < self._max_steps:
            informed = _single_hop_exchange(positions, informed, self._radius)
            curve.append(int(informed.sum()))
            if informed.all():
                broadcast_time = t
                break
            positions = mobility.step(positions, rng)
            t += 1

        return DenseModelResult(
            n_nodes=self._n_nodes,
            n_agents=self._n_agents,
            exchange_radius=self._radius,
            jump_radius=self._rho,
            broadcast_time=broadcast_time,
            completed=broadcast_time >= 0,
            n_steps=t,
            informed_curve=np.asarray(curve, dtype=np.int64),
        )
